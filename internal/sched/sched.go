// Package sched implements the two-level parallelization of ATMULT
// (paper §III-F): one worker *team* per (simulated) socket, each team
// processing the tile-row/tile-column pairs whose A tile-row is homed on
// its socket (inter-tile parallelization), and the workers inside a team
// splitting the rows of a single tile multiplication among themselves
// (intra-tile parallelization). Spawning exactly one team per socket
// avoids last-level-cache pollution from unrelated tiles, which is the
// paper's stated reason for this resource split.
//
// Since the persistent-runtime rework, teams are long-lived: a process-wide
// Runtime per topology keeps Sockets × CoresPerSocket worker goroutines
// alive across calls (see runtime.go), mirroring the paper's reliance on
// SAP HANA's resident task framework. Pool remains the one-shot façade all
// operators use; it routes into the shared Runtime unless Ephemeral
// restores the historical spawn-per-call behavior for ablations.
package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"atmatrix/internal/numa"
)

// Task is one unit of inter-tile work: the computation of a single target
// tile C_{ti,tj}. It receives the team executing it so it can fan out its
// row range across the team's workers.
type Task func(team *Team)

// Team is a group of workers bound to one simulated socket.
type Team struct {
	// Socket is the simulated socket (and memory node) this team is
	// pinned to.
	Socket numa.Node
	// Workers is the number of threads in the team.
	Workers int
	// Grain is the minimum number of rows per worker in ParallelRows; a
	// range shorter than 2·Grain runs inline. Zero or one means no
	// constraint. The knob exists because tiny sparse tiles otherwise
	// over-parallelize — the hazard the paper notes for small blocks.
	Grain int

	// home links a runtime-backed team to its persistent workers; nil for
	// ad-hoc teams (tests, ephemeral pools), which fall back to spawning.
	home *workerTeam
}

// WorkerLocal returns a pointer to the persistent storage slot of the given
// team-local worker index, or nil when the team is not backed by the
// persistent runtime. The slot is owned exclusively by the goroutine
// executing that worker's ParallelRows chunk (worker 0 additionally owns it
// for the whole task, since tasks run on the leader), so callers may use it
// without locking; the runtime's channel and WaitGroup handoffs order all
// accesses across goroutines.
func (t *Team) WorkerLocal(worker int) *any {
	if t.home == nil || worker < 0 || worker >= len(t.home.locals) {
		return nil
	}
	return &t.home.locals[worker]
}

// ParallelRows splits the half-open range [0, n) into one contiguous,
// balanced chunk per participating worker and runs f(lo, hi, worker)
// concurrently. Chunk sizes differ by at most one row, so a range slightly
// above the worker count no longer produces near-empty trailing chunks.
// The number of participants is additionally capped so that every chunk
// has at least Grain rows; with a single participant (or a trivially small
// range) f runs inline, avoiding fan-out overhead for tiny tiles.
func (t *Team) ParallelRows(n int, f func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	w := t.Workers
	if w > n {
		w = n
	}
	if g := t.Grain; g > 1 {
		if maxW := n / g; w > maxW {
			w = maxW
		}
	}
	if w <= 1 {
		f(0, n, 0)
		return
	}
	base, rem := n/w, n%w
	// Worker i gets base rows, the first rem workers one extra.
	first := base
	if rem > 0 {
		first++
	}
	if t.home != nil {
		// Persistent path: hand chunks 1..w-1 to the team's resident
		// helpers, run chunk 0 on the leader, then wait on the reusable
		// barrier. No goroutine is created. A panic in any chunk —
		// including the leader's own — is deferred past the barrier so the
		// reusable WaitGroup is never abandoned mid-count, then re-raised
		// for the task-level recovery to convert into a TaskPanicError.
		wg := &t.home.wg
		wg.Add(w - 1)
		lo := first
		for i := 1; i < w; i++ {
			sz := base
			if i < rem {
				sz++
			}
			t.home.jobCh <- rowJob{lo: lo, hi: lo + sz, worker: i, f: f, wg: wg}
			lo += sz
		}
		leaderP := runChunk(f, 0, first, 0)
		wg.Wait()
		if fp := t.home.fanoutPanic.Swap(nil); fp != nil {
			panic(fp)
		}
		if leaderP != nil {
			panic(leaderP)
		}
		return
	}
	// Ad-hoc path (tests, ephemeral pools): spawn per call as before, with
	// the same panic-past-the-barrier discipline.
	var wg sync.WaitGroup
	var shared atomic.Pointer[fanoutPanic]
	wg.Add(w - 1)
	lo := first
	for i := 1; i < w; i++ {
		sz := base
		if i < rem {
			sz++
		}
		go func(lo, hi, worker int) {
			defer wg.Done()
			if fp := runChunk(f, lo, hi, worker); fp != nil {
				shared.CompareAndSwap(nil, fp)
			}
		}(lo, lo+sz, i)
		lo += sz
	}
	leaderP := runChunk(f, 0, first, 0)
	wg.Wait()
	if fp := shared.Load(); fp != nil {
		panic(fp)
	}
	if leaderP != nil {
		panic(leaderP)
	}
}

// Pool runs per-team task queues. It is a thin adapter over the shared
// persistent Runtime of its topology; constructing a Pool is free and every
// current caller keeps its one-Pool-per-operator usage unchanged.
type Pool struct {
	topo numa.Topology
	// Stealing enables cross-team work stealing once a team's own queue
	// is drained. The paper pins pairs strictly to the socket owning the
	// A tile-row; stealing is an extension evaluated in the ablation
	// benchmarks.
	Stealing bool
	// RowGrain is the minimum number of rows per worker handed to
	// Team.ParallelRows (see Team.Grain).
	RowGrain int
	// Watchdog, when positive, is the per-task deadline: a task running
	// longer marks its team degraded and fails the run with a
	// *WatchdogError instead of blocking the caller forever. Zero
	// disables the watchdog. Only the persistent runtime enforces it;
	// Ephemeral pools ignore the knob.
	Watchdog time.Duration
	// Ephemeral restores the historical spawn-per-call scheduler: every
	// Run starts fresh goroutines and no persistent worker state is
	// reused. It exists as the ablation baseline for the persistent
	// runtime and the per-worker scratch arenas.
	Ephemeral bool
}

// NewPool returns a pool over the given topology.
func NewPool(topo numa.Topology) *Pool {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	return &Pool{topo: topo}
}

// Topology returns the pool's topology.
func (p *Pool) Topology() numa.Topology { return p.topo }

// Run executes the queues: queues[s] holds the tasks affine to socket s.
// It blocks until every task has run exactly once (or the run failed). The
// error, when non-nil, is the run's first failure: a *TaskPanicError for a
// recovered task panic, a *WatchdogError for a task that overran the
// pool's watchdog, or ErrNoHealthyTeams. Queue indexes beyond the socket
// count are folded back round-robin.
func (p *Pool) Run(queues [][]Task) (RunStats, error) { return p.RunCtx(nil, queues) }

// RunCtx is Run with a cancellation context: a cancelled ctx stops the
// teams from picking up further tasks (in-flight tasks always finish). A
// nil ctx means an uncancellable run. Cancellation is reported by the
// caller inspecting ctx, not through the returned error.
func (p *Pool) RunCtx(ctx context.Context, queues [][]Task) (RunStats, error) {
	if !p.Ephemeral {
		return RuntimeFor(p.topo).RunCtx(ctx, queues, p.runOpts())
	}
	s := p.topo.Sockets
	folded := make([][]Task, s)
	for i, q := range queues {
		folded[i%s] = append(folded[i%s], q...)
	}
	return p.runEphemeral(&runReq{folded: folded, stealing: p.Stealing, grain: p.RowGrain, ctx: ctx})
}

// RunIndexed executes queues of item ids through one shared task function
// (see Runtime.RunIndexedCtx); queues[s] holds the items affine to socket
// s.
func (p *Pool) RunIndexed(queues [][]int32, run func(team *Team, item int32)) (RunStats, error) {
	return p.RunIndexedCtx(nil, queues, run)
}

// RunIndexedCtx is RunIndexed with a cancellation context (see RunCtx).
func (p *Pool) RunIndexedCtx(ctx context.Context, queues [][]int32, run func(team *Team, item int32)) (RunStats, error) {
	if !p.Ephemeral {
		return RuntimeFor(p.topo).RunIndexedCtx(ctx, queues, run, p.runOpts())
	}
	s := p.topo.Sockets
	folded := make([][]int32, s)
	for i, q := range queues {
		folded[i%s] = append(folded[i%s], q...)
	}
	return p.runEphemeral(&runReq{items: folded, run: run, stealing: p.Stealing, grain: p.RowGrain, ctx: ctx})
}

func (p *Pool) runOpts() RunOpts {
	return RunOpts{Stealing: p.Stealing, Grain: p.RowGrain, Watchdog: p.Watchdog}
}

// runEphemeral is the pre-runtime implementation: one goroutine per socket
// per call, teams without persistent backing. Task panics are isolated the
// same way as on the persistent runtime; the watchdog is not enforced
// (ephemeral teams exist only as the ablation baseline).
func (p *Pool) runEphemeral(req *runReq) (RunStats, error) {
	s := p.topo.Sockets
	req.next = make([]atomic.Int64, s)
	var wg sync.WaitGroup
	for sock := 0; sock < s; sock++ {
		wg.Add(1)
		go func(sock int) {
			defer wg.Done()
			team := &Team{Socket: numa.Node(sock), Workers: p.topo.CoresPerSocket, Grain: p.RowGrain}
			// Drain the local queue first.
			for {
				if req.aborted() {
					return
				}
				i := int(req.next[sock].Add(1) - 1)
				if i >= req.queueLen(sock) {
					break
				}
				req.safeExec(sock, i, team)
			}
			if !p.Stealing {
				return
			}
			// Steal round-robin from the other sockets.
			for off := 1; off < s; off++ {
				victim := (sock + off) % s
				for {
					if req.aborted() {
						return
					}
					i := int(req.next[victim].Add(1) - 1)
					if i >= req.queueLen(victim) {
						break
					}
					req.safeExec(victim, i, team)
					req.stolen.Add(1)
				}
			}
		}(sock)
	}
	wg.Wait()
	return RunStats{Stolen: req.stolen.Load()}, req.firstErr()
}

// RunFlat distributes a flat task list round-robin across sockets and
// runs it; a convenience for callers without placement information.
func (p *Pool) RunFlat(tasks []Task) (RunStats, error) {
	queues := make([][]Task, p.topo.Sockets)
	for i, t := range tasks {
		s := i % p.topo.Sockets
		queues[s] = append(queues[s], t)
	}
	return p.Run(queues)
}
