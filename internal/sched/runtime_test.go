package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atmatrix/internal/numa"
)

// TestRuntimeGoroutinesStableAcrossRuns checks the point of the persistent
// runtime: repeated Run calls reuse the resident workers instead of
// spawning per call.
func TestRuntimeGoroutinesStableAcrossRuns(t *testing.T) {
	p := NewPool(topo(2, 3))
	warm := func() {
		queues := make([][]Task, 2)
		for s := range queues {
			queues[s] = []Task{func(team *Team) {
				team.ParallelRows(64, func(lo, hi, w int) {})
			}}
		}
		p.Run(queues)
	}
	warm() // first call starts the workers
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		warm()
	}
	// Give any stray spawned goroutines a moment to show up.
	time.Sleep(10 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before {
		t.Fatalf("goroutines grew across runs: %d -> %d", before, after)
	}
}

// TestWorkerLocalPersistsAcrossRuns checks that a value parked in a worker
// slot survives subsequent Run calls — the property the per-worker scratch
// arenas rely on.
func TestWorkerLocalPersistsAcrossRuns(t *testing.T) {
	p := NewPool(topo(1, 2))
	run := func(f Task) {
		p.Run([][]Task{{f}})
	}
	run(func(team *Team) {
		*team.WorkerLocal(0) = "kept"
	})
	var got any
	run(func(team *Team) {
		got = *team.WorkerLocal(0)
	})
	if got != "kept" {
		t.Fatalf("worker slot = %v, want \"kept\"", got)
	}
}

// TestWorkerLocalNilForAdHocTeams checks the documented fallback for teams
// without persistent backing.
func TestWorkerLocalNilForAdHocTeams(t *testing.T) {
	team := &Team{Workers: 2}
	if team.WorkerLocal(0) != nil {
		t.Fatal("ad-hoc team returned a non-nil worker slot")
	}
}

// TestRunStatsStolenCount checks the stolen-task counter: all work homed on
// socket 0 of a 4-socket pool with stealing on must report at least one
// steal (the other three leaders have nothing local).
func TestRunStatsStolenCount(t *testing.T) {
	p := NewPool(topo(4, 1))
	p.Stealing = true
	var block = make(chan struct{})
	queues := make([][]Task, 4)
	// The first task parks socket 0's leader so the other leaders must
	// steal the rest.
	queues[0] = append(queues[0], func(*Team) { <-block })
	for i := 0; i < 32; i++ {
		queues[0] = append(queues[0], func(*Team) {})
	}
	done := make(chan RunStats)
	go func() {
		rs, _ := p.Run(queues)
		done <- rs
	}()
	time.Sleep(5 * time.Millisecond)
	close(block)
	rs := <-done
	if rs.Stolen == 0 {
		t.Fatal("no tasks counted as stolen")
	}
	if rs.Stolen > 32 {
		t.Fatalf("stolen = %d, more than the queue holds", rs.Stolen)
	}
}

// TestRunStatsNoStealWithoutFlag checks that strict socket pinning (the
// paper's default) never reports steals.
func TestRunStatsNoStealWithoutFlag(t *testing.T) {
	p := NewPool(topo(2, 1))
	queues := make([][]Task, 2)
	for i := 0; i < 16; i++ {
		queues[i%2] = append(queues[i%2], func(*Team) {})
	}
	if rs, _ := p.Run(queues); rs.Stolen != 0 {
		t.Fatalf("stolen = %d without stealing enabled", rs.Stolen)
	}
}

// TestRunIndexedExecutesEveryItemOnce mirrors TestRunExecutesEveryTaskOnce
// for the allocation-free indexed form.
func TestRunIndexedExecutesEveryItemOnce(t *testing.T) {
	for _, ephemeral := range []bool{false, true} {
		p := NewPool(topo(3, 2))
		p.Ephemeral = ephemeral
		var counts [40]atomic.Int32
		queues := make([][]int32, 3)
		for i := 0; i < 40; i++ {
			queues[i%3] = append(queues[i%3], int32(i))
		}
		p.RunIndexed(queues, func(_ *Team, item int32) { counts[item].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("ephemeral=%v: item %d ran %d times", ephemeral, i, counts[i].Load())
			}
		}
	}
}

// TestRunIndexedStealing loads one socket and requires stealing to finish
// and count the moved items.
func TestRunIndexedStealing(t *testing.T) {
	p := NewPool(topo(3, 1))
	p.Stealing = true
	var n atomic.Int32
	queues := make([][]int32, 3)
	for i := 0; i < 90; i++ {
		queues[0] = append(queues[0], int32(i))
	}
	rs, _ := p.RunIndexed(queues, func(*Team, int32) { n.Add(1) })
	if n.Load() != 90 {
		t.Fatalf("ran %d items, want 90", n.Load())
	}
	if rs.Stolen > 90 {
		t.Fatalf("stolen = %d out of 90", rs.Stolen)
	}
}

// TestParallelRowsGrainCapsWorkers checks the row-grain knob: with
// Grain=8, a 20-row range may use at most 2 workers (chunks of ≥8 rows)
// and a 15-row range must run inline.
func TestParallelRowsGrainCapsWorkers(t *testing.T) {
	team := &Team{Workers: 4, Grain: 8}

	var mu sync.Mutex
	workers := map[int]bool{}
	team.ParallelRows(20, func(lo, hi, w int) {
		if hi-lo < 8 {
			t.Errorf("chunk [%d,%d) shorter than grain", lo, hi)
		}
		mu.Lock()
		workers[w] = true
		mu.Unlock()
	})
	if len(workers) > 2 {
		t.Fatalf("used %d workers, want ≤ 2 with grain 8 over 20 rows", len(workers))
	}

	inlineCalls := 0
	team.ParallelRows(15, func(lo, hi, w int) {
		inlineCalls++
		if lo != 0 || hi != 15 || w != 0 {
			t.Fatalf("expected inline execution, got [%d,%d) on worker %d", lo, hi, w)
		}
	})
	if inlineCalls != 1 {
		t.Fatalf("inline range invoked %d times", inlineCalls)
	}
}

// TestParallelRowsBalancedChunks checks that chunk sizes differ by at most
// one row — the fix for the near-empty trailing chunks the ceiling split
// used to produce (e.g. 17 rows over 4 workers was 5/5/5/2).
func TestParallelRowsBalancedChunks(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{17, 4}, {100, 3}, {5, 4}, {31, 8}, {9, 2},
	} {
		team := &Team{Workers: tc.workers}
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		var sizes []int
		team.ParallelRows(tc.n, func(lo, hi, w int) {
			<-mu
			sizes = append(sizes, hi-lo)
			mu <- struct{}{}
		})
		mn, mx := tc.n, 0
		total := 0
		for _, s := range sizes {
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
			total += s
		}
		if total != tc.n {
			t.Fatalf("n=%d w=%d: chunks sum to %d", tc.n, tc.workers, total)
		}
		if mx-mn > 1 {
			t.Fatalf("n=%d w=%d: unbalanced chunks %v", tc.n, tc.workers, sizes)
		}
	}
}

// TestEphemeralPoolRuns checks the ablation path end to end.
func TestEphemeralPoolRuns(t *testing.T) {
	p := NewPool(topo(2, 2))
	p.Ephemeral = true
	var n atomic.Int32
	queues := make([][]Task, 2)
	for i := 0; i < 10; i++ {
		queues[i%2] = append(queues[i%2], func(team *Team) {
			if team.WorkerLocal(0) != nil {
				t.Error("ephemeral team has persistent worker slots")
			}
			team.ParallelRows(8, func(lo, hi, w int) { n.Add(int32(hi - lo)) })
		})
	}
	p.Run(queues)
	if n.Load() != 80 {
		t.Fatalf("covered %d rows, want 80", n.Load())
	}
}

// TestRuntimeForReusesInstance checks the per-topology singleton.
func TestRuntimeForReusesInstance(t *testing.T) {
	a := RuntimeFor(numa.Topology{Sockets: 2, CoresPerSocket: 5})
	b := RuntimeFor(numa.Topology{Sockets: 2, CoresPerSocket: 5})
	if a != b {
		t.Fatal("same topology produced two runtimes")
	}
	if a.Topology().Sockets != 2 || a.Topology().CoresPerSocket != 5 {
		t.Fatalf("runtime topology = %+v", a.Topology())
	}
}
