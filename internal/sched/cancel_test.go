package sched

import (
	"context"
	"sync/atomic"
	"testing"

	"atmatrix/internal/numa"
)

// TestCancelStopsDrain checks that a run whose context is cancelled from
// inside a task stops picking up further tasks: with a single team and a
// queue of N tasks where task K cancels, at most K+1 tasks may execute.
func TestCancelStopsDrain(t *testing.T) {
	for _, ephemeral := range []bool{false, true} {
		name := "persistent"
		if ephemeral {
			name = "ephemeral"
		}
		t.Run(name, func(t *testing.T) {
			p := NewPool(numa.Topology{Sockets: 1, CoresPerSocket: 2})
			p.Ephemeral = ephemeral
			const total, cancelAt = 64, 5
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var executed atomic.Int64
			items := make([]int32, total)
			for i := range items {
				items[i] = int32(i)
			}
			p.RunIndexedCtx(ctx, [][]int32{items}, func(team *Team, item int32) {
				if executed.Add(1) == cancelAt {
					cancel()
				}
			})
			if n := executed.Load(); n != cancelAt {
				t.Fatalf("executed %d tasks, want exactly %d (cancel must stop the drain)", n, cancelAt)
			}
		})
	}
}

// TestCancelStopsStealing checks that cancellation also halts the steal
// phase: a cancelled context set before the run starts executes nothing.
func TestCancelStopsStealing(t *testing.T) {
	p := NewPool(numa.Topology{Sockets: 2, CoresPerSocket: 1})
	p.Stealing = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int64
	items := []int32{0, 1, 2, 3}
	p.RunIndexedCtx(ctx, [][]int32{items, items}, func(team *Team, item int32) {
		executed.Add(1)
	})
	if n := executed.Load(); n != 0 {
		t.Fatalf("cancelled run executed %d tasks, want 0", n)
	}
}

// TestCancelledRuntimeStaysUsable checks that a cancelled run does not wedge
// the persistent teams: a subsequent uncancelled run completes normally.
func TestCancelledRuntimeStaysUsable(t *testing.T) {
	p := NewPool(numa.Topology{Sockets: 2, CoresPerSocket: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.RunIndexedCtx(ctx, [][]int32{{0, 1}, {2, 3}}, func(team *Team, item int32) {})

	var executed atomic.Int64
	p.RunIndexed([][]int32{{0, 1}, {2, 3}}, func(team *Team, item int32) {
		executed.Add(1)
	})
	if n := executed.Load(); n != 4 {
		t.Fatalf("post-cancel run executed %d tasks, want 4", n)
	}
}
