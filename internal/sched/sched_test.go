package sched

import (
	"sync"
	"sync/atomic"
	"testing"

	"atmatrix/internal/numa"
)

func topo(s, c int) numa.Topology { return numa.Topology{Sockets: s, CoresPerSocket: c} }

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	p := NewPool(topo(3, 2))
	var counts [30]atomic.Int32
	queues := make([][]Task, 3)
	for i := 0; i < 30; i++ {
		i := i
		queues[i%3] = append(queues[i%3], func(*Team) { counts[i].Add(1) })
	}
	p.Run(queues)
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestRunWithStealing(t *testing.T) {
	p := NewPool(topo(4, 1))
	p.Stealing = true
	var n atomic.Int32
	// Load all the work onto one socket; stealing must still complete it
	// all exactly once.
	queues := make([][]Task, 4)
	for i := 0; i < 100; i++ {
		queues[0] = append(queues[0], func(*Team) { n.Add(1) })
	}
	p.Run(queues)
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestRunFoldsExtraQueues(t *testing.T) {
	p := NewPool(topo(2, 1))
	var n atomic.Int32
	queues := make([][]Task, 5) // more queues than sockets
	for i := range queues {
		queues[i] = []Task{func(*Team) { n.Add(1) }}
	}
	p.Run(queues)
	if n.Load() != 5 {
		t.Fatalf("ran %d tasks, want 5", n.Load())
	}
}

func TestTeamSocketAssignment(t *testing.T) {
	p := NewPool(topo(3, 2))
	var mu sync.Mutex
	seen := map[numa.Node]bool{}
	queues := make([][]Task, 3)
	for s := 0; s < 3; s++ {
		want := numa.Node(s)
		queues[s] = []Task{func(team *Team) {
			if team.Socket != want {
				t.Errorf("task on socket %d, want %d", team.Socket, want)
			}
			if team.Workers != 2 {
				t.Errorf("team workers %d, want 2", team.Workers)
			}
			mu.Lock()
			seen[team.Socket] = true
			mu.Unlock()
		}}
	}
	p.Run(queues)
	if len(seen) != 3 {
		t.Fatalf("saw %d sockets, want 3", len(seen))
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	team := &Team{Workers: 4}
	for _, n := range []int{0, 1, 3, 4, 5, 17, 100} {
		covered := make([]atomic.Int32, n)
		team.ParallelRows(n, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d: row %d covered %d times", n, i, covered[i].Load())
			}
		}
	}
}

func TestParallelRowsInlineForSingleWorker(t *testing.T) {
	team := &Team{Workers: 1}
	ran := false
	team.ParallelRows(10, func(lo, hi, w int) {
		if lo != 0 || hi != 10 || w != 0 {
			t.Fatalf("inline split [%d,%d) worker %d", lo, hi, w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("function not invoked")
	}
}

func TestParallelRowsWorkerIDsDisjoint(t *testing.T) {
	team := &Team{Workers: 3}
	var mu sync.Mutex
	workers := map[int]bool{}
	team.ParallelRows(30, func(lo, hi, w int) {
		mu.Lock()
		if workers[w] {
			t.Errorf("worker id %d reused", w)
		}
		workers[w] = true
		mu.Unlock()
	})
	if len(workers) != 3 {
		t.Fatalf("used %d workers, want 3", len(workers))
	}
}

func TestRunFlat(t *testing.T) {
	p := NewPool(topo(2, 2))
	var n atomic.Int32
	tasks := make([]Task, 9)
	for i := range tasks {
		tasks[i] = func(*Team) { n.Add(1) }
	}
	p.RunFlat(tasks)
	if n.Load() != 9 {
		t.Fatalf("ran %d, want 9", n.Load())
	}
}

func TestNewPoolRejectsInvalidTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid topology accepted")
		}
	}()
	NewPool(numa.Topology{})
}
