package sched

import (
	"errors"
	"testing"
	"time"

	"atmatrix/internal/faultinject"
	"atmatrix/internal/leakcheck"
)

// faultRuntime starts a leak-checked runtime on a topology private to the
// calling test and tears it down (before the leak assertion, cleanups being
// LIFO) when the test ends.
func faultRuntime(t *testing.T, sockets, cores int) (*Runtime, *Pool) {
	t.Helper()
	leakcheck.Check(t)
	tp := topo(sockets, cores)
	rt := RuntimeFor(tp)
	t.Cleanup(rt.Close)
	return rt, NewPool(tp)
}

// transient mirrors the service layer's failure classifier marker.
type transient interface{ Transient() bool }

func TestTaskPanicBecomesTypedError(t *testing.T) {
	_, p := faultRuntime(t, 2, 4)
	panicsBefore, _ := Counters()
	ran := 0
	queues := [][]Task{
		{func(team *Team) { ran++ }},
		{func(team *Team) { panic("boom") }},
	}
	_, err := p.Run(queues)
	var tpe *TaskPanicError
	if !errors.As(err, &tpe) {
		t.Fatalf("Run error = %v, want *TaskPanicError", err)
	}
	if tpe.Item != -1 {
		t.Errorf("closure task panic Item = %d, want -1", tpe.Item)
	}
	if tpe.Value != "boom" {
		t.Errorf("panic Value = %v, want \"boom\"", tpe.Value)
	}
	if len(tpe.Stack) == 0 {
		t.Error("panic Stack is empty")
	}
	if panicsAfter, _ := Counters(); panicsAfter <= panicsBefore {
		t.Errorf("task panic counter did not advance: %d -> %d", panicsBefore, panicsAfter)
	}
	// The runtime survives: a healthy run on the same teams succeeds.
	total := make([]int, 2)
	healthy := [][]Task{
		{func(team *Team) { total[0]++ }},
		{func(team *Team) { total[1]++ }},
	}
	if _, err := p.Run(healthy); err != nil {
		t.Fatalf("healthy run after panic failed: %v", err)
	}
	if total[0] != 1 || total[1] != 1 {
		t.Errorf("healthy run executed %v, want [1 1]", total)
	}
}

func TestIndexedTaskPanicCarriesItem(t *testing.T) {
	_, p := faultRuntime(t, 2, 2)
	queues := [][]int32{{0, 1, 2}, {3, 4, 5}}
	_, err := p.RunIndexed(queues, func(team *Team, item int32) {
		if item == 4 {
			panic("poisoned tile")
		}
	})
	var tpe *TaskPanicError
	if !errors.As(err, &tpe) {
		t.Fatalf("RunIndexed error = %v, want *TaskPanicError", err)
	}
	if tpe.Item != 4 {
		t.Errorf("Item = %d, want 4", tpe.Item)
	}
}

func TestFanoutHelperPanicIsolated(t *testing.T) {
	_, p := faultRuntime(t, 1, 4)
	for _, worker := range []int{0, 2} { // leader chunk and a helper chunk
		_, err := p.Run([][]Task{{func(team *Team) {
			team.ParallelRows(64, func(lo, hi, w int) {
				if w == worker {
					panic("chunk down")
				}
			})
		}}})
		var tpe *TaskPanicError
		if !errors.As(err, &tpe) {
			t.Fatalf("worker %d: error = %v, want *TaskPanicError", worker, err)
		}
		if tpe.Value != "chunk down" {
			t.Errorf("worker %d: Value = %v, want \"chunk down\"", worker, tpe.Value)
		}
		// The team's reusable barrier must have survived: a full fan-out
		// over the same helpers still covers every row exactly once.
		seen := make([]int32, 256)
		if _, err := p.Run([][]Task{{func(team *Team) {
			team.ParallelRows(len(seen), func(lo, hi, w int) {
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
		}}}); err != nil {
			t.Fatalf("worker %d: fan-out after panic failed: %v", worker, err)
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("worker %d: row %d ran %d times, want 1", worker, i, n)
			}
		}
	}
}

func TestWatchdogDegradesTeamAndSelfHeals(t *testing.T) {
	rt, p := faultRuntime(t, 2, 2)
	p.Watchdog = 30 * time.Millisecond
	release := make(chan struct{})
	blocked := [][]Task{
		{func(team *Team) { <-release }},
		{},
	}
	_, err := p.Run(blocked)
	var wde *WatchdogError
	if !errors.As(err, &wde) {
		t.Fatalf("Run error = %v, want *WatchdogError", err)
	}
	if wde.Socket != 0 {
		t.Errorf("WatchdogError.Socket = %d, want 0", wde.Socket)
	}
	var tr transient
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Error("WatchdogError must classify as transient")
	}
	if ds := rt.DegradedSockets(); len(ds) != 1 || ds[0] != 0 {
		t.Fatalf("DegradedSockets = %v, want [0]", ds)
	}
	// While team 0 is stuck, new runs route its queue onto healthy teams
	// and succeed.
	ran := 0
	if _, err := p.Run([][]Task{
		{func(team *Team) { ran++ }},
		{func(team *Team) { ran++ }},
	}); err != nil {
		t.Fatalf("run during degradation failed: %v", err)
	}
	if ran != 2 {
		t.Errorf("degraded-mode run executed %d tasks, want 2", ran)
	}
	// Unstick the task; the leader finishes and self-heals the team.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for len(rt.DegradedSockets()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("team did not self-heal; DegradedSockets = %v", rt.DegradedSockets())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Run([][]Task{{func(team *Team) {}}, {func(team *Team) {}}}); err != nil {
		t.Fatalf("run after self-heal failed: %v", err)
	}
}

// TestWatchdogDegradedTeamHealsWithoutRedelivery guards the self-heal path
// when the degrading run was never delivered to the stuck leader: its
// dispatch handoff is abandoned once the watchdog retires the team, so
// healing must not depend on the leader ever seeing that request — the
// leader finishing any request is the proof of life.
func TestWatchdogDegradedTeamHealsWithoutRedelivery(t *testing.T) {
	rt, p := faultRuntime(t, 2, 2)
	release := make(chan struct{})
	started := make(chan struct{})
	blockedErr := make(chan error, 1)
	// Run 1 wedges socket 0's leader.
	go func() {
		_, err := p.Run([][]Task{{func(team *Team) { close(started); <-release }}, {}})
		blockedErr <- err
	}()
	<-started
	// Run 2 parks in the leader's size-1 channel buffer so run 3's handoff
	// must go through the abandonable async path.
	queuedErr := make(chan error, 1)
	go func() {
		_, err := p.Run([][]Task{{func(team *Team) {}}, {}})
		queuedErr <- err
	}()
	time.Sleep(20 * time.Millisecond)

	wp := NewPool(p.Topology())
	wp.Watchdog = 30 * time.Millisecond
	_, err := wp.Run([][]Task{{func(team *Team) {}}, {func(team *Team) {}}})
	var wde *WatchdogError
	if !errors.As(err, &wde) {
		t.Fatalf("watchdogged run error = %v, want *WatchdogError", err)
	}
	if ds := rt.DegradedSockets(); len(ds) != 1 || ds[0] != 0 {
		t.Fatalf("DegradedSockets = %v, want [0]", ds)
	}
	// Unwedge the leader. It finishes runs 1 and 2 — neither of which is
	// the run that degraded it — and must still self-heal.
	close(release)
	if err := <-blockedErr; err != nil {
		t.Fatalf("blocked run failed: %v", err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued run failed: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(rt.DegradedSockets()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("team never healed; DegradedSockets = %v (degrading request was never redelivered)", rt.DegradedSockets())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := wp.Run([][]Task{{func(team *Team) {}}, {func(team *Team) {}}}); err != nil {
		t.Fatalf("run after heal failed: %v", err)
	}
}

// TestWatchdogIgnoresEarlierRunsTask guards against misattribution: a run's
// watchdog measures stuck time from the later of the task's start and the
// run's own dispatch, so a legitimate long task belonging to an earlier run
// must not degrade a healthy team out from under a freshly dispatched run.
func TestWatchdogIgnoresEarlierRunsTask(t *testing.T) {
	rt, p := faultRuntime(t, 2, 2)
	release := make(chan struct{})
	started := make(chan struct{})
	earlier := make(chan error, 1)
	go func() {
		_, err := p.Run([][]Task{{func(team *Team) { close(started); <-release }}, {}})
		earlier <- err
	}()
	<-started
	// Let the earlier run's task predate the watchdogged run by more than
	// the whole deadline, so degrading on raw task age would fire on the
	// watchdog's very first poll.
	time.Sleep(450 * time.Millisecond)

	wp := NewPool(p.Topology())
	wp.Watchdog = 400 * time.Millisecond
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = wp.Run([][]Task{{func(team *Team) {}}, {func(team *Team) {}}})
	}()
	// Free the leader well past the watchdog's first polls but well before
	// a full deadline has elapsed since the run's dispatch.
	time.Sleep(200 * time.Millisecond)
	close(release)
	<-done
	if runErr != nil {
		t.Fatalf("run queued behind an earlier long task failed: %v (watchdog misattribution)", runErr)
	}
	if err := <-earlier; err != nil {
		t.Fatalf("earlier run failed: %v", err)
	}
	if ds := rt.DegradedSockets(); len(ds) != 0 {
		t.Errorf("DegradedSockets = %v, want none", ds)
	}
}

func TestAllTeamsDegradedIsTransientError(t *testing.T) {
	rt, p := faultRuntime(t, 1, 3)
	p.Watchdog = 20 * time.Millisecond
	release := make(chan struct{})
	if _, err := p.Run([][]Task{{func(team *Team) { <-release }}}); err == nil {
		t.Fatal("expected watchdog failure")
	}
	_, err := p.Run([][]Task{{func(team *Team) {}}})
	if !errors.Is(err, ErrNoHealthyTeams) {
		t.Fatalf("run with all teams degraded: error = %v, want ErrNoHealthyTeams", err)
	}
	var tr transient
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Error("ErrNoHealthyTeams must classify as transient")
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for len(rt.DegradedSockets()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("team did not self-heal")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Run([][]Task{{func(team *Team) {}}}); err != nil {
		t.Fatalf("run after heal failed: %v", err)
	}
}

func TestInjectedPanicAtNthTask(t *testing.T) {
	_, p := faultRuntime(t, 2, 2)
	defer faultinject.Enable(1, faultinject.Rule{
		Site: "sched.task", Kind: faultinject.KindPanic, After: 4,
	})()
	items := [][]int32{{0, 1, 2, 3}, {4, 5, 6, 7}}
	_, err := p.RunIndexed(items, func(team *Team, item int32) {})
	var tpe *TaskPanicError
	if !errors.As(err, &tpe) {
		t.Fatalf("error = %v, want *TaskPanicError", err)
	}
	if ip, ok := tpe.Value.(*faultinject.InjectedPanic); !ok || ip.Site != "sched.task" {
		t.Errorf("panic Value = %v, want *InjectedPanic at sched.task", tpe.Value)
	}
	faultinject.Disable()
	if _, err := p.RunIndexed(items, func(team *Team, item int32) {}); err != nil {
		t.Fatalf("run after disarming faults failed: %v", err)
	}
}

func TestEphemeralPoolPanicIsolated(t *testing.T) {
	leakcheck.Check(t)
	p := NewPool(topo(2, 2))
	p.Ephemeral = true
	_, err := p.Run([][]Task{{func(team *Team) { panic("ephemeral boom") }}})
	var tpe *TaskPanicError
	if !errors.As(err, &tpe) {
		t.Fatalf("error = %v, want *TaskPanicError", err)
	}
	if _, err := p.Run([][]Task{{func(team *Team) {}}}); err != nil {
		t.Fatalf("ephemeral run after panic failed: %v", err)
	}
}

func TestRuntimeCloseReleasesWorkers(t *testing.T) {
	leakcheck.Check(t)
	tp := topo(3, 3)
	rt := RuntimeFor(tp)
	p := NewPool(tp)
	if _, err := p.Run([][]Task{
		{func(team *Team) { team.ParallelRows(32, func(lo, hi, w int) {}) }},
		{func(team *Team) {}},
		{func(team *Team) {}},
	}); err != nil {
		t.Fatalf("warm-up run failed: %v", err)
	}
	rt.Close()
	rt.Close() // idempotent
	// A fresh runtime for the same topology starts cleanly afterwards.
	rt2 := RuntimeFor(tp)
	if rt2 == rt {
		t.Fatal("RuntimeFor returned the closed runtime")
	}
	if _, err := p.Run([][]Task{{func(team *Team) {}}}); err != nil {
		t.Fatalf("run on fresh runtime failed: %v", err)
	}
	rt2.Close()
}
