package sched

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"atmatrix/internal/numa"
)

// TaskPanicError reports a panic inside a task body. The scheduler recovers
// the panic on the executing worker, so only the run that owned the task
// fails — the worker teams and every other in-flight run keep going. Item
// carries the task's item id for indexed runs (the tile-pair index a caller
// can map back to tile coordinates); -1 for closure tasks.
type TaskPanicError struct {
	// Socket is the team that executed the panicking task.
	Socket numa.Node
	// Item is the item id of an indexed task, -1 for closure tasks.
	Item int32
	// Value is the recovered panic value.
	Value any
	// Stack is the stack of the panicking goroutine, captured at recovery.
	Stack []byte
}

func (e *TaskPanicError) Error() string {
	if e.Item >= 0 {
		return fmt.Sprintf("sched: task panic on socket %d (item %d): %v", e.Socket, e.Item, e.Value)
	}
	return fmt.Sprintf("sched: task panic on socket %d: %v", e.Socket, e.Value)
}

// WatchdogError reports that a task overran the run's per-task watchdog
// deadline: the run abandoned the team (marking it degraded) instead of
// blocking forever. The failure is transient — the team recovers as soon as
// its stuck task returns, and retries land on the remaining healthy teams.
type WatchdogError struct {
	// Socket is the team abandoned by the watchdog.
	Socket numa.Node
	// Elapsed is how long the stuck task had been running when the
	// watchdog fired.
	Elapsed time.Duration
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sched: watchdog: task on socket %d stuck for %v; team marked degraded", e.Socket, e.Elapsed)
}

// Transient marks watchdog failures as retryable for the service layer's
// failure classifier.
func (e *WatchdogError) Transient() bool { return true }

// errNoHealthyTeams is returned when every team of the runtime is marked
// degraded; it is transient because teams self-heal when their stuck tasks
// return.
type errNoHealthyTeams struct{}

func (errNoHealthyTeams) Error() string   { return "sched: no healthy worker teams (all degraded)" }
func (errNoHealthyTeams) Transient() bool { return true }

// ErrNoHealthyTeams reports that a run could not start because every worker
// team is degraded.
var ErrNoHealthyTeams error = errNoHealthyTeams{}

// fanoutPanic carries a panic from a ParallelRows chunk back to the task
// that fanned out, preserving the originating goroutine's stack.
type fanoutPanic struct {
	value any
	stack []byte
}

// runChunk executes one ParallelRows chunk, converting a panic into a
// *fanoutPanic instead of unwinding the worker goroutine.
func runChunk(f func(lo, hi, worker int), lo, hi, worker int) (fp *fanoutPanic) {
	defer func() {
		if p := recover(); p != nil {
			if prior, ok := p.(*fanoutPanic); ok {
				fp = prior
				return
			}
			fp = &fanoutPanic{value: p, stack: debug.Stack()}
		}
	}()
	f(lo, hi, worker)
	return nil
}

// taskPanics and watchdogTimeouts are process-wide counters of recovered
// task panics and watchdog firings, exposed for metrics endpoints.
var taskPanics, watchdogTimeouts atomic.Int64

// Counters returns the process-wide fault counters: recovered task panics
// and watchdog timeouts since process start.
func Counters() (panics, watchdogs int64) {
	return taskPanics.Load(), watchdogTimeouts.Load()
}
