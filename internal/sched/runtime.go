package sched

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"atmatrix/internal/faultinject"
	"atmatrix/internal/numa"
)

// Runtime is the persistent incarnation of the two-level scheduler: it
// starts Sockets × CoresPerSocket long-lived worker goroutines once and
// serves every subsequent Run / ParallelRows over channels, the way the
// paper's SAP HANA task framework keeps socket-pinned worker teams alive
// across operator invocations (§III-F). The spawn-per-call Pool of earlier
// revisions paid a goroutine creation and a fresh stack for every tile of
// every multiplication; the Runtime pays one channel handoff instead, and —
// more importantly — gives every worker a stable identity that per-worker
// scratch arenas can key off (see Team.WorkerLocal).
//
// The runtime is also the process's panic domain boundary: a panic inside a
// task body (including its ParallelRows fan-out) is recovered on the worker,
// converted to a *TaskPanicError, and fails only the run that owned the
// task. A run may additionally arm a per-task watchdog; a task monopolizing
// a leader past the deadline — measured from the later of the task's start
// and the run's dispatch, so backlog from concurrent runs does not count —
// marks the owning team degraded and fails the run with a *WatchdogError
// instead of blocking the caller forever. Degraded teams are skipped by
// later runs (their queues are refolded onto healthy teams) and self-heal
// as soon as their leader finishes any request, the proof that the stuck
// task has returned.
//
// Tasks must not call Run (directly or through a Pool) from inside a task:
// the leader executing the outer task would never pick up the nested
// request. None of the operators in this repository nest runs.
type Runtime struct {
	topo   numa.Topology
	teams  []*workerTeam
	closed atomic.Bool

	// handoffs tracks the async dispatch senders (see dispatch). Close
	// drains it before closing the leader channels, so an abandoned
	// handoff can never race a channel close: once its request is done,
	// a sender exits promptly.
	handoffs sync.WaitGroup
}

// workerTeam is the persistent backing of one socket's team: a leader
// goroutine that drains task queues and size-1 helper goroutines that serve
// the leader's intra-tile row fan-outs.
type workerTeam struct {
	rt     *Runtime
	socket numa.Node
	size   int

	leaderCh chan *runReq
	jobCh    chan rowJob

	// wg is the reusable intra-tile barrier. Only this team's leader runs
	// ParallelRows (tasks execute on the leader, one at a time), so the
	// WaitGroup is never used by two fan-outs concurrently.
	wg sync.WaitGroup

	// locals holds one arbitrary per-worker storage slot per team worker.
	// Slot w is owned exclusively by whichever goroutine currently executes
	// worker w's chunk; the channel/WaitGroup handoffs order all accesses.
	locals []any

	// taskStart is the UnixNano start time of the leader's in-flight task,
	// 0 while idle; run watchdogs read it to detect stuck tasks.
	taskStart atomic.Int64

	// degraded marks a team abandoned by a watchdog. Dispatch skips
	// degraded teams; the leader clears the flag whenever it finishes a
	// request — proof that it is alive — so a team heals even when the
	// run that degraded it was abandoned in dispatch and never reached
	// this leader.
	degraded atomic.Bool

	// fanoutPanic holds the first panic of the current ParallelRows
	// fan-out's helper chunks. Only one fan-out runs per team at a time,
	// so a single slot suffices.
	fanoutPanic atomic.Pointer[fanoutPanic]

	// leaderDone is closed when the leader goroutine exits (Close);
	// helpersDone tracks the helper goroutines.
	leaderDone  chan struct{}
	helpersDone sync.WaitGroup
}

// rowJob is one intra-tile work item: a row chunk of the current tile
// multiplication, executed by a helper worker.
type rowJob struct {
	lo, hi, worker int
	f              func(lo, hi, worker int)
	wg             *sync.WaitGroup
}

// RunOpts tunes one run on the persistent runtime.
type RunOpts struct {
	// Stealing enables cross-team work stealing once a team's own queue
	// is drained.
	Stealing bool
	// Grain is the minimum number of rows per worker in ParallelRows
	// (see Team.Grain).
	Grain int
	// Watchdog, when positive, is the per-task deadline: a task running
	// longer marks its team degraded and fails the run with a
	// *WatchdogError instead of blocking the caller. Zero disables the
	// watchdog.
	Watchdog time.Duration
}

// runReq is one Pool.Run handed to the leaders: the folded per-socket task
// queues plus the shared drain/steal cursors. A request carries either
// closure tasks (folded) or item ids executed through one shared function
// (items + run) — the indexed form exists so that a caller with thousands
// of homogeneous tasks per invocation does not allocate one closure each.
type runReq struct {
	folded   [][]Task
	items    [][]int32
	run      func(team *Team, item int32)
	next     []atomic.Int64
	stealing bool
	grain    int
	watchdog time.Duration
	// dispatched is the UnixNano time the request was handed to the
	// leaders. The watchdog measures stuck time from the later of this and
	// the in-flight task's start, so a task (or a backlog of tasks)
	// belonging to an earlier run cannot fail this run until it has
	// monopolized a leader for a full deadline of this run's lifetime.
	dispatched int64
	// ctx, when non-nil, aborts the run between task executions: a
	// cancelled request stops draining its queues but never interrupts a
	// task mid-flight, so worker-local state stays consistent.
	ctx    context.Context
	stolen atomic.Int64

	// done closes when every participating team has finished or been
	// abandoned; finished[s] flips exactly once per socket (by the leader
	// on completion or by the watchdog on abandonment) and pending counts
	// the sockets still outstanding.
	done     chan struct{}
	pending  atomic.Int64
	finished []atomic.Bool

	// failed flips on the first task panic so all teams stop draining this
	// request's queues; err holds the first failure.
	failed atomic.Bool
	errMu  sync.Mutex
	err    error
}

// cancelled reports whether the request's context has been cancelled.
func (req *runReq) cancelled() bool {
	return req.ctx != nil && req.ctx.Err() != nil
}

// aborted reports whether leaders should stop picking up this request's
// tasks: the context was cancelled or a task already failed the run.
func (req *runReq) aborted() bool {
	return req.failed.Load() || req.cancelled()
}

// fail records the run's first error and stops further task pickup.
func (req *runReq) fail(err error) {
	req.errMu.Lock()
	if req.err == nil {
		req.err = err
	}
	req.errMu.Unlock()
	req.failed.Store(true)
}

// firstErr returns the recorded failure, if any.
func (req *runReq) firstErr() error {
	req.errMu.Lock()
	defer req.errMu.Unlock()
	return req.err
}

// markDone retires socket s's participation exactly once, whether called by
// the leader on completion or by the watchdog on abandonment. It reports
// whether this call was the one that retired the socket.
func (req *runReq) markDone(s int) bool {
	if !req.finished[s].CompareAndSwap(false, true) {
		return false
	}
	if req.pending.Add(-1) == 0 {
		close(req.done)
	}
	return true
}

// queueLen returns the length of socket s's folded queue.
func (req *runReq) queueLen(s int) int {
	if req.run != nil {
		return len(req.items[s])
	}
	return len(req.folded[s])
}

// exec runs entry i of socket s's queue on the given team.
func (req *runReq) exec(s, i int, team *Team) {
	if req.run != nil {
		req.run(team, req.items[s][i])
		return
	}
	req.folded[s][i](team)
}

// safeExec is exec behind the panic boundary: a panicking task (or an
// injected fault) is converted into a *TaskPanicError that fails only this
// request. Panics surfacing from ParallelRows helper chunks arrive as
// *fanoutPanic values carrying the original goroutine's stack.
func (req *runReq) safeExec(s, i int, team *Team) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		stack := debug.Stack()
		if fp, ok := p.(*fanoutPanic); ok {
			p, stack = fp.value, fp.stack
		}
		item := int32(-1)
		if req.run != nil {
			item = req.items[s][i]
		}
		taskPanics.Add(1)
		req.fail(&TaskPanicError{Socket: team.Socket, Item: item, Value: p, Stack: stack})
	}()
	if err := faultinject.Do("sched.task"); err != nil {
		// Tasks have no error return; an armed error rule at this site
		// surfaces as a (recovered) panic.
		panic(err)
	}
	req.exec(s, i, team)
}

// RunStats reports scheduling counters of one Run call.
type RunStats struct {
	// Stolen is the number of tasks executed by a team other than the one
	// owning the task's home queue.
	Stolen int64
}

var (
	runtimeMu sync.Mutex
	runtimes  = map[numa.Topology]*Runtime{}
)

// RuntimeFor returns the shared persistent runtime for a topology, starting
// its workers on first use. Runtimes live for the remainder of the process
// unless explicitly Closed — idle workers block on their channels and cost
// nothing but stack space.
func RuntimeFor(topo numa.Topology) *Runtime {
	runtimeMu.Lock()
	defer runtimeMu.Unlock()
	if r, ok := runtimes[topo]; ok {
		return r
	}
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	r := &Runtime{topo: topo}
	for s := 0; s < topo.Sockets; s++ {
		t := &workerTeam{
			rt:         r,
			socket:     numa.Node(s),
			size:       topo.CoresPerSocket,
			leaderCh:   make(chan *runReq, 1),
			jobCh:      make(chan rowJob, topo.CoresPerSocket),
			locals:     make([]any, topo.CoresPerSocket),
			leaderDone: make(chan struct{}),
		}
		r.teams = append(r.teams, t)
		go r.leaderLoop(t)
		t.helpersDone.Add(t.size - 1)
		for w := 1; w < t.size; w++ {
			go t.helperLoop()
		}
	}
	runtimes[topo] = r
	return r
}

// Topology returns the runtime's topology.
func (r *Runtime) Topology() numa.Topology { return r.topo } //atlint:ignore racefield topo is set once in ForTopology before the Runtime escapes; runtimeMu guards the registry, not the field

// DegradedSockets returns the sockets currently marked degraded by a
// watchdog, in ascending order.
func (r *Runtime) DegradedSockets() []int {
	var out []int
	for s, t := range r.teams {
		if t.degraded.Load() {
			out = append(out, s)
		}
	}
	return out
}

// Close shuts the runtime's workers down and unregisters it from the
// process-wide registry, so a later RuntimeFor starts fresh. It blocks
// until every leader and helper exited — a leader stuck in a task delays
// Close until that task returns. Close must not race with in-flight Run
// calls; it exists for tests (leak checks) and controlled teardown.
func (r *Runtime) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	runtimeMu.Lock()
	if runtimes[r.topo] == r {
		delete(runtimes, r.topo)
	}
	runtimeMu.Unlock()
	// Wait out abandoned async handoffs — their runs are done, so they
	// exit promptly — before closing the channels they may still be
	// trying to send on.
	r.handoffs.Wait()
	for _, t := range r.teams {
		close(t.leaderCh)
	}
	for _, t := range r.teams {
		<-t.leaderDone
	}
	// Helpers only receive jobs from their (now exited) leader, so the job
	// channels are quiescent and safe to close.
	for _, t := range r.teams {
		close(t.jobCh)
	}
	for _, t := range r.teams {
		t.helpersDone.Wait()
	}
}

// RunCtx executes the queues on the persistent teams: queues[s] holds the
// tasks affine to socket s, every task runs exactly once (unless the run is
// cancelled or fails), and the call blocks until all teams finished. A nil
// ctx means an uncancellable run. Concurrent RunCtx calls on the same
// runtime are safe; their tasks are serialized per leader, which bounds the
// process-wide parallelism to the topology — the point of a persistent
// worker pool. A non-nil error reports the run's first failure: a
// *TaskPanicError, a *WatchdogError, or ErrNoHealthyTeams. Cancellation is
// reported by the caller inspecting ctx, not through the returned error
// (the same contract as Pool.RunCtx).
func (r *Runtime) RunCtx(ctx context.Context, queues [][]Task, opts RunOpts) (RunStats, error) {
	s := len(r.teams)
	folded := make([][]Task, s)
	for i, q := range queues {
		folded[i%s] = append(folded[i%s], q...)
	}
	return r.dispatch(&runReq{folded: folded, stealing: opts.Stealing, grain: opts.Grain, watchdog: opts.Watchdog, ctx: ctx})
}

// RunIndexedCtx executes queues of item ids through one shared task
// function, with the same placement, stealing and completion semantics as
// RunCtx. It is the allocation-free bulk form: a multiplication enqueues
// one int32 per tile pair instead of one closure per pair.
func (r *Runtime) RunIndexedCtx(ctx context.Context, queues [][]int32, run func(team *Team, item int32), opts RunOpts) (RunStats, error) {
	s := len(r.teams)
	folded := make([][]int32, s)
	for i, q := range queues {
		folded[i%s] = append(folded[i%s], q...)
	}
	return r.dispatch(&runReq{items: folded, run: run, stealing: opts.Stealing, grain: opts.Grain, watchdog: opts.Watchdog, ctx: ctx})
}

func (r *Runtime) dispatch(req *runReq) (RunStats, error) {
	n := len(r.teams)
	req.next = make([]atomic.Int64, n)
	req.finished = make([]atomic.Bool, n)
	req.done = make(chan struct{})

	// Degraded teams do not participate: their queues are refolded onto
	// healthy teams so no task is lost, and their finished slots are
	// pre-retired.
	healthy := make([]int, 0, n)
	for s, t := range r.teams {
		if !t.degraded.Load() {
			healthy = append(healthy, s)
		}
	}
	if len(healthy) == 0 {
		return RunStats{}, ErrNoHealthyTeams
	}
	if len(healthy) < n {
		for s, t := range r.teams {
			if !t.degraded.Load() {
				continue
			}
			dst := healthy[s%len(healthy)]
			if req.run != nil {
				req.items[dst] = append(req.items[dst], req.items[s]...)
				req.items[s] = nil
			} else {
				req.folded[dst] = append(req.folded[dst], req.folded[s]...)
				req.folded[s] = nil
			}
			req.finished[s].Store(true)
		}
	}
	req.pending.Store(int64(len(healthy)))
	req.dispatched = time.Now().UnixNano()

	for _, s := range healthy {
		t := r.teams[s]
		select {
		case t.leaderCh <- req:
		default:
			// The leader is backed up behind an earlier request. Hand off
			// asynchronously so a team hung in another run cannot wedge
			// this dispatch; the send is abandoned once this run finishes
			// (e.g. the watchdog retired the team). A leader receiving a
			// request that is already done skips all of its queues and
			// merely re-proves its liveness.
			r.handoffs.Add(1)
			go func(t *workerTeam) {
				defer r.handoffs.Done()
				select {
				case t.leaderCh <- req:
				case <-req.done:
				}
			}(t)
		}
	}
	if req.watchdog > 0 {
		go r.watchdogLoop(req, healthy)
	}
	<-req.done
	return RunStats{Stolen: req.stolen.Load()}, req.firstErr()
}

// watchdogLoop polls the participating teams' in-flight task start times
// and abandons any team one task has monopolized for the request's watchdog
// deadline: the team is marked degraded, the run fails with a
// *WatchdogError, and the run's completion no longer waits on that team.
// Stuck time is measured from the later of the task's start and this
// request's dispatch, so a task legitimately started under an earlier run —
// or a backlog of short tasks queued ahead of this one — never degrades a
// team that keeps making progress. The stuck leader itself keeps running;
// the degraded mark clears when the leader next finishes a request, or
// right here if the task turns out to have completed while the team was
// being retired.
func (r *Runtime) watchdogLoop(req *runReq, participants []int) {
	interval := req.watchdog / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-req.done:
			return
		case <-ticker.C:
			now := time.Now().UnixNano()
			for _, s := range participants {
				if req.finished[s].Load() {
					continue
				}
				t := r.teams[s]
				start := t.taskStart.Load()
				if start == 0 {
					// The leader is idle: this request is merely queued
					// (or still in handoff), not stuck.
					continue
				}
				eff := start
				if req.dispatched > eff {
					eff = req.dispatched
				}
				if time.Duration(now-eff) < req.watchdog {
					continue
				}
				// Mark degraded before retiring the socket so a caller
				// retrying right after the error skips this team. Retire
				// via CAS rather than markDone so the error is recorded
				// before done closes.
				t.degraded.Store(true)
				if !req.finished[s].CompareAndSwap(false, true) {
					// The leader retired the socket concurrently — it is
					// alive after all.
					t.degraded.Store(false)
					continue
				}
				watchdogTimeouts.Add(1)
				req.fail(&WatchdogError{Socket: t.socket, Elapsed: time.Duration(now - eff)})
				if req.pending.Add(-1) == 0 {
					close(req.done)
				}
				if t.taskStart.Load() != start {
					// The task judged stuck completed while the team was
					// being retired: the leader proved itself alive and
					// may already be idle, so heal now instead of waiting
					// for a request that might never be delivered.
					t.degraded.Store(false)
				}
			}
		}
	}
}

// leaderLoop is the per-socket leader: for every request it drains the
// local queue, optionally steals from the other sockets round-robin, and
// signals completion. Tasks run on the leader goroutine itself; only
// ParallelRows fans out to the helpers.
func (r *Runtime) leaderLoop(t *workerTeam) {
	defer close(t.leaderDone)
	sock := int(t.socket)
	for req := range t.leaderCh {
		team := &Team{Socket: t.socket, Workers: t.size, Grain: req.grain, home: t}
		for !req.aborted() && !req.finished[sock].Load() {
			i := int(req.next[sock].Add(1) - 1)
			if i >= req.queueLen(sock) {
				break
			}
			t.taskStart.Store(time.Now().UnixNano())
			req.safeExec(sock, i, team)
			t.taskStart.Store(0)
		}
		if req.stealing {
			for off := 1; off < len(r.teams); off++ {
				victim := (sock + off) % len(r.teams)
				for !req.aborted() && !req.finished[sock].Load() {
					i := int(req.next[victim].Add(1) - 1)
					if i >= req.queueLen(victim) {
						break
					}
					t.taskStart.Store(time.Now().UnixNano())
					req.safeExec(victim, i, team)
					t.taskStart.Store(0)
					req.stolen.Add(1)
				}
			}
		}
		req.markDone(sock)
		// Finishing a request — any request — proves this leader is alive:
		// clear a degraded mark left by a watchdog, including one from a
		// run whose dispatch handoff was abandoned before ever reaching
		// this leader (that run can never be redelivered to heal us).
		t.degraded.Store(false)
	}
}

// helperLoop serves the intra-tile row chunks of this team's leader.
func (t *workerTeam) helperLoop() {
	defer t.helpersDone.Done()
	for j := range t.jobCh {
		t.runJob(j)
	}
}

// runJob executes one row chunk behind the fan-out panic boundary: a panic
// is parked in the team's fanoutPanic slot (first one wins) for the leader
// to re-raise after the barrier, and the WaitGroup is always released.
func (t *workerTeam) runJob(j rowJob) {
	defer j.wg.Done()
	if fp := runChunk(j.f, j.lo, j.hi, j.worker); fp != nil {
		t.fanoutPanic.CompareAndSwap(nil, fp)
	}
}
