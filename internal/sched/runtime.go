package sched

import (
	"context"
	"sync"
	"sync/atomic"

	"atmatrix/internal/numa"
)

// Runtime is the persistent incarnation of the two-level scheduler: it
// starts Sockets × CoresPerSocket long-lived worker goroutines once and
// serves every subsequent Run / ParallelRows over channels, the way the
// paper's SAP HANA task framework keeps socket-pinned worker teams alive
// across operator invocations (§III-F). The spawn-per-call Pool of earlier
// revisions paid a goroutine creation and a fresh stack for every tile of
// every multiplication; the Runtime pays one channel handoff instead, and —
// more importantly — gives every worker a stable identity that per-worker
// scratch arenas can key off (see Team.WorkerLocal).
//
// Tasks must not call Run (directly or through a Pool) from inside a task:
// the leader executing the outer task would never pick up the nested
// request. None of the operators in this repository nest runs.
type Runtime struct {
	topo  numa.Topology
	teams []*workerTeam
}

// workerTeam is the persistent backing of one socket's team: a leader
// goroutine that drains task queues and size-1 helper goroutines that serve
// the leader's intra-tile row fan-outs.
type workerTeam struct {
	rt     *Runtime
	socket numa.Node
	size   int

	leaderCh chan *runReq
	jobCh    chan rowJob

	// wg is the reusable intra-tile barrier. Only this team's leader runs
	// ParallelRows (tasks execute on the leader, one at a time), so the
	// WaitGroup is never used by two fan-outs concurrently.
	wg sync.WaitGroup

	// locals holds one arbitrary per-worker storage slot per team worker.
	// Slot w is owned exclusively by whichever goroutine currently executes
	// worker w's chunk; the channel/WaitGroup handoffs order all accesses.
	locals []any
}

// rowJob is one intra-tile work item: a row chunk of the current tile
// multiplication, executed by a helper worker.
type rowJob struct {
	lo, hi, worker int
	f              func(lo, hi, worker int)
	wg             *sync.WaitGroup
}

// runReq is one Pool.Run handed to the leaders: the folded per-socket task
// queues plus the shared drain/steal cursors. A request carries either
// closure tasks (folded) or item ids executed through one shared function
// (items + run) — the indexed form exists so that a caller with thousands
// of homogeneous tasks per invocation does not allocate one closure each.
type runReq struct {
	folded   [][]Task
	items    [][]int32
	run      func(team *Team, item int32)
	next     []atomic.Int64
	stealing bool
	grain    int
	// ctx, when non-nil, aborts the run between task executions: a
	// cancelled request stops draining its queues but never interrupts a
	// task mid-flight, so worker-local state stays consistent.
	ctx    context.Context
	stolen atomic.Int64
	wg     sync.WaitGroup
}

// cancelled reports whether the request's context has been cancelled.
func (req *runReq) cancelled() bool {
	return req.ctx != nil && req.ctx.Err() != nil
}

// queueLen returns the length of socket s's folded queue.
func (req *runReq) queueLen(s int) int {
	if req.run != nil {
		return len(req.items[s])
	}
	return len(req.folded[s])
}

// exec runs entry i of socket s's queue on the given team.
func (req *runReq) exec(s, i int, team *Team) {
	if req.run != nil {
		req.run(team, req.items[s][i])
		return
	}
	req.folded[s][i](team)
}

// RunStats reports scheduling counters of one Run call.
type RunStats struct {
	// Stolen is the number of tasks executed by a team other than the one
	// owning the task's home queue.
	Stolen int64
}

var (
	runtimeMu sync.Mutex
	runtimes  = map[numa.Topology]*Runtime{}
)

// RuntimeFor returns the shared persistent runtime for a topology, starting
// its workers on first use. Runtimes live for the remainder of the process —
// idle workers block on their channels and cost nothing but stack space.
func RuntimeFor(topo numa.Topology) *Runtime {
	runtimeMu.Lock()
	defer runtimeMu.Unlock()
	if r, ok := runtimes[topo]; ok {
		return r
	}
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	r := &Runtime{topo: topo}
	for s := 0; s < topo.Sockets; s++ {
		t := &workerTeam{
			rt:       r,
			socket:   numa.Node(s),
			size:     topo.CoresPerSocket,
			leaderCh: make(chan *runReq, 1),
			jobCh:    make(chan rowJob, topo.CoresPerSocket),
			locals:   make([]any, topo.CoresPerSocket),
		}
		r.teams = append(r.teams, t)
		go r.leaderLoop(t)
		for w := 1; w < t.size; w++ {
			go t.helperLoop()
		}
	}
	runtimes[topo] = r
	return r
}

// Topology returns the runtime's topology.
func (r *Runtime) Topology() numa.Topology { return r.topo }

// Run executes the queues on the persistent teams with the same semantics
// as Pool.Run: queues[s] holds the tasks affine to socket s, every task
// runs exactly once, and the call blocks until all tasks finished.
// Concurrent Run calls on the same runtime are safe; their tasks are
// serialized per leader, which bounds the process-wide parallelism to the
// topology — the point of a persistent worker pool.
func (r *Runtime) Run(queues [][]Task, stealing bool, grain int) RunStats {
	return r.RunCtx(nil, queues, stealing, grain)
}

// RunCtx is Run with a cancellation context: when ctx is cancelled the
// leaders stop picking up further tasks (in-flight tasks always finish) and
// the call returns. ctx may be nil for an uncancellable run.
func (r *Runtime) RunCtx(ctx context.Context, queues [][]Task, stealing bool, grain int) RunStats {
	s := len(r.teams)
	folded := make([][]Task, s)
	for i, q := range queues {
		folded[i%s] = append(folded[i%s], q...)
	}
	return r.dispatch(&runReq{folded: folded, stealing: stealing, grain: grain, ctx: ctx})
}

// RunIndexed executes queues of item ids through one shared task function,
// with the same placement, stealing and completion semantics as Run. It is
// the allocation-free bulk form: a multiplication enqueues one int32 per
// tile pair instead of one closure per pair.
func (r *Runtime) RunIndexed(queues [][]int32, run func(team *Team, item int32), stealing bool, grain int) RunStats {
	return r.RunIndexedCtx(nil, queues, run, stealing, grain)
}

// RunIndexedCtx is RunIndexed with a cancellation context (see RunCtx).
func (r *Runtime) RunIndexedCtx(ctx context.Context, queues [][]int32, run func(team *Team, item int32), stealing bool, grain int) RunStats {
	s := len(r.teams)
	folded := make([][]int32, s)
	for i, q := range queues {
		folded[i%s] = append(folded[i%s], q...)
	}
	return r.dispatch(&runReq{items: folded, run: run, stealing: stealing, grain: grain, ctx: ctx})
}

func (r *Runtime) dispatch(req *runReq) RunStats {
	req.next = make([]atomic.Int64, len(r.teams))
	req.wg.Add(len(r.teams))
	for _, t := range r.teams {
		t.leaderCh <- req
	}
	req.wg.Wait()
	return RunStats{Stolen: req.stolen.Load()}
}

// leaderLoop is the per-socket leader: for every request it drains the
// local queue, optionally steals from the other sockets round-robin, and
// signals completion. Tasks run on the leader goroutine itself; only
// ParallelRows fans out to the helpers.
func (r *Runtime) leaderLoop(t *workerTeam) {
	sock := int(t.socket)
	for req := range t.leaderCh {
		team := &Team{Socket: t.socket, Workers: t.size, Grain: req.grain, home: t}
		for {
			if req.cancelled() {
				break
			}
			i := int(req.next[sock].Add(1) - 1)
			if i >= req.queueLen(sock) {
				break
			}
			req.exec(sock, i, team)
		}
		if req.stealing {
			for off := 1; off < len(r.teams); off++ {
				victim := (sock + off) % len(r.teams)
				for {
					if req.cancelled() {
						break
					}
					i := int(req.next[victim].Add(1) - 1)
					if i >= req.queueLen(victim) {
						break
					}
					req.exec(victim, i, team)
					req.stolen.Add(1)
				}
			}
		}
		req.wg.Done()
	}
}

// helperLoop serves the intra-tile row chunks of this team's leader.
func (t *workerTeam) helperLoop() {
	for j := range t.jobCh {
		j.f(j.lo, j.hi, j.worker)
		j.wg.Done()
	}
}
