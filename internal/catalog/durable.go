package catalog

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"atmatrix/internal/core"
	"atmatrix/internal/faultinject"
)

// Durable backing store. Layout of the data directory:
//
//	manifest.json        crash-safe JSON index of the file set
//	<hash>-<gen>.atm     one ATMAT1 stream per named matrix
//
// The manifest is the source of truth: an .atm file it does not reference
// is an orphan from an interrupted Put and is swept on Recover. Every
// manifest write goes through core.WriteFileAtomic, so a crash at any
// instant leaves either the old or the new manifest, never a torn one.

const manifestName = "manifest.json"

// manifestEntry is one matrix in the on-disk index. CRC32C is the ATMAT1
// footer checksum of the referenced file; a reload cross-checks the file
// against it before trusting the bytes, catching both bit rot and a
// manifest/file pairing gone stale.
type manifestEntry struct {
	Name        string `json:"name"`
	File        string `json:"file"`
	CRC32C      uint32 `json:"crc32c"`
	FileBytes   int64  `json:"file_bytes"`
	MatrixBytes int64  `json:"matrix_bytes"`
	Rows        int    `json:"rows"`
	Cols        int    `json:"cols"`
	NNZ         int64  `json:"nnz"`
	TilesSparse int    `json:"tiles_sparse"`
	TilesDense  int    `json:"tiles_dense"`
	Pinned      bool   `json:"pinned"`
	// Shards, when present, is the cluster shard map recorded for this
	// matrix — how its tile-row shards are replicated across workers. A
	// restarting coordinator rebuilds its placement from here instead of
	// re-shipping every shard.
	Shards *ShardMap `json:"shards,omitempty"`
}

type manifestFile struct {
	Version int             `json:"version"`
	Entries []manifestEntry `json:"entries"`
}

// Open returns a catalog backed by dataDir (created if absent); an empty
// dataDir yields a memory-only catalog identical to New. Opening does not
// read existing state — call Recover to rebuild from a previous run's
// manifest.
func Open(cfg core.Config, budget int64, dataDir string) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("catalog: negative budget %d", budget)
	}
	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return nil, fmt.Errorf("catalog: creating data dir: %w", err)
		}
	}
	return &Catalog{
		cfg:     cfg,
		budget:  budget,
		dataDir: dataDir,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}, nil
}

// fileFor builds the backing file name for one admission of name: a short
// content-independent hash of the name (names may contain characters the
// filesystem rejects) plus a per-catalog generation number, so re-admitting
// a deleted name never races the old file's removal.
func (c *Catalog) fileFor(name string) string {
	sum := sha256.Sum256([]byte(name))
	return fmt.Sprintf("%s-%d.atm", hex.EncodeToString(sum[:8]), c.gen.Add(1))
}

// persist writes the matrix through to the data directory and records the
// file on the entry. Runs off-lock (serialization is O(bytes)); if the
// entry was deleted while writing, the fresh file is removed again.
func (c *Catalog) persist(e *entry, m *core.ATMatrix) error {
	c.persisting.Add(1)
	defer c.persisting.Add(-1)
	file := c.fileFor(e.name)
	path := filepath.Join(c.dataDir, file)
	if _, err := m.WriteFile(path); err != nil {
		return err
	}
	crc, size, err := core.FileChecksum(path)
	if err != nil {
		os.Remove(path)
		return err
	}
	c.mu.Lock()
	if e.gone {
		c.mu.Unlock()
		os.Remove(path)
		return nil
	}
	e.file, e.crc, e.fileBytes, e.persisted = file, crc, size, true
	c.mu.Unlock()
	return nil
}

// flushManifest rewrites the manifest from the current entry set. Writes
// are serialized (last snapshot wins) and atomic, so concurrent Put/Delete
// always leave a manifest describing some consistent recent state.
func (c *Catalog) flushManifest() error {
	if c.dataDir == "" {
		return nil
	}
	c.manifestMu.Lock()
	defer c.manifestMu.Unlock()
	mf := manifestFile{Version: 1, Entries: []manifestEntry{}}
	c.mu.Lock()
	for _, e := range c.entries {
		if !e.persisted || e.gone {
			continue
		}
		mf.Entries = append(mf.Entries, manifestEntry{
			Name: e.name, File: e.file, CRC32C: e.crc,
			FileBytes: e.fileBytes, MatrixBytes: e.bytes,
			Rows: e.rows, Cols: e.cols, NNZ: e.nnz,
			TilesSparse: e.tilesSparse, TilesDense: e.tilesDense,
			Pinned: e.pinned, Shards: e.shards.Clone(),
		})
	}
	c.mu.Unlock()
	sort.Slice(mf.Entries, func(i, j int) bool { return mf.Entries[i].Name < mf.Entries[j].Name })
	data, err := json.MarshalIndent(&mf, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	_, err = core.WriteFileAtomic(filepath.Join(c.dataDir, manifestName), func(w io.Writer) (int64, error) {
		n, err := w.Write(data)
		return int64(n), err
	})
	if err != nil {
		return fmt.Errorf("catalog: writing manifest: %w", err)
	}
	return nil
}

// reload reads a spilled entry's backing file back into memory, verifying
// the footer checksum against the manifest record and the stream content
// against the footer. The caller owns the entry's loading channel; the
// durability fields it reads are immutable once set.
func (c *Catalog) reload(e *entry) (*core.ATMatrix, error) {
	if err := faultinject.Do("catalog.reload"); err != nil {
		return nil, fmt.Errorf("catalog: reloading %q: %w", e.name, err)
	}
	if c.dataDir == "" || !e.persisted {
		// Unreachable by construction (only persisted entries spill);
		// guards against future states.
		return nil, fmt.Errorf("catalog: reloading %q: %w (no durable copy)", e.name, ErrNotFound)
	}
	path := filepath.Join(c.dataDir, e.file) //atlint:ignore racefield e.file is immutable once the entry is persisted; the loading channel serializes reloads
	crc, _, err := core.FileChecksum(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: reloading %q: %w", e.name, err)
	}
	if crc != e.crc {
		return nil, fmt.Errorf("catalog: reloading %q: %w: file %s has footer %08x, manifest recorded %08x",
			e.name, core.ErrChecksum, e.file, crc, e.crc) //atlint:ignore racefield durability fields are immutable once the entry is persisted
	}
	m, err := core.ReadATMatrixFile(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: reloading %q from %s: %w", e.name, e.file, err) //atlint:ignore racefield durability fields are immutable once the entry is persisted
	}
	m.SealChecksums()
	return m, nil
}

// fileGeneration parses the generation suffix out of a backing file name
// ("<hash>-<gen>.atm"), or 0 when the name does not carry one.
func fileGeneration(file string) int64 {
	base := strings.TrimSuffix(file, ".atm")
	dash := strings.LastIndexByte(base, '-')
	if dash < 0 {
		return 0
	}
	var g int64
	for _, r := range base[dash+1:] {
		if r < '0' || r > '9' {
			return 0
		}
		g = g*10 + int64(r-'0')
	}
	return g
}

// removeDataFile deletes one backing file; removal failures are not
// surfaced (the manifest no longer references the file, so at worst it
// becomes an orphan the next Recover sweeps).
func (c *Catalog) removeDataFile(file string) {
	os.Remove(filepath.Join(c.dataDir, file))
}

// RecoverStats summarizes one Recover pass.
type RecoverStats struct {
	Registered int      // manifest entries registered for lazy reload
	Loaded     int      // pinned matrices reloaded eagerly
	Skipped    int      // names already present (idempotent re-run)
	Failed     []string // pinned entries whose eager reload failed
}

// Recover rebuilds the catalog from the data directory's manifest after a
// restart: every recorded matrix is registered in the spilled state (so it
// is immediately visible to List/Info and lazily reloadable by Acquire),
// pinned matrices are additionally reloaded eagerly, and orphaned .atm
// files from interrupted writes are swept. Recover is idempotent — names
// already present are left untouched — and an absent manifest is an empty
// (fresh) store, not an error. A pinned entry whose eager reload fails is
// reported in Failed but stays registered: a later Acquire retries it.
func (c *Catalog) Recover() (RecoverStats, error) {
	var rs RecoverStats
	if c.dataDir == "" {
		return rs, fmt.Errorf("catalog: Recover on a memory-only catalog")
	}
	data, err := os.ReadFile(filepath.Join(c.dataDir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		// Fresh store. Any .atm files are leftovers of writes that never
		// reached a manifest — they were never durably admitted.
		c.sweepOrphans(map[string]bool{})
		return rs, nil
	}
	if err != nil {
		return rs, fmt.Errorf("catalog: reading manifest: %w", err)
	}
	var mf manifestFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return rs, fmt.Errorf("catalog: corrupt manifest: %w", err)
	}
	known := make(map[string]bool, len(mf.Entries))
	var pinned []string
	c.mu.Lock()
	for _, me := range mf.Entries {
		known[me.File] = true
		if _, ok := c.entries[me.Name]; ok {
			rs.Skipped++
			continue
		}
		e := &entry{
			name: me.Name, bytes: me.MatrixBytes, pinned: me.Pinned,
			rows: me.Rows, cols: me.Cols, nnz: me.NNZ,
			tilesSparse: me.TilesSparse, tilesDense: me.TilesDense,
			file: me.File, crc: me.CRC32C, fileBytes: me.FileBytes,
			persisted: true, shards: me.Shards,
		}
		// Keep the generation counter ahead of everything recovered, so
		// file names and shard-map generations minted after a restart
		// never collide with recorded ones.
		if g := fileGeneration(me.File); g > 0 {
			for cur := c.gen.Load(); cur < g && !c.gen.CompareAndSwap(cur, g); cur = c.gen.Load() {
			}
		}
		if me.Shards != nil {
			for cur := c.gen.Load(); cur < me.Shards.Generation && !c.gen.CompareAndSwap(cur, me.Shards.Generation); cur = c.gen.Load() {
			}
		}
		if me.Rows > 0 && me.Cols > 0 {
			e.density = float64(me.NNZ) / (float64(me.Rows) * float64(me.Cols))
		}
		c.entries[me.Name] = e
		c.recovered++
		rs.Registered++
		if me.Pinned {
			pinned = append(pinned, me.Name)
		}
	}
	// Files owned by live entries (including ones admitted since boot)
	// are never orphans.
	for _, e := range c.entries {
		if e.file != "" {
			known[e.file] = true
		}
	}
	c.mu.Unlock()
	c.sweepOrphans(known)
	for _, name := range pinned {
		h, err := c.Acquire(name)
		if err != nil {
			rs.Failed = append(rs.Failed, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		h.Release()
		rs.Loaded++
	}
	return rs, nil
}

// sweepOrphans removes .atm files (and stale temp files) the manifest does
// not account for. Skipped entirely while any write-through is in flight —
// its file may not be registered yet.
func (c *Catalog) sweepOrphans(known map[string]bool) {
	if c.persisting.Load() != 0 {
		return
	}
	ents, err := os.ReadDir(c.dataDir)
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || known[name] || name == manifestName {
			continue
		}
		if strings.HasSuffix(name, ".atm") ||
			(strings.HasPrefix(name, ".atm-") && strings.HasSuffix(name, ".tmp")) {
			os.Remove(filepath.Join(c.dataDir, name))
		}
	}
}
