package catalog

import (
	"fmt"
	"sort"
	"time"

	"atmatrix/internal/core"
	"atmatrix/internal/faultinject"
)

// Background scrubbing: every matrix is sealed with per-tile CRC-32C
// payload checksums at admission (core.SealChecksums); the scrubber walks
// the resident set and re-verifies them, catching silent in-memory
// corruption (bit rot, stray writes, the faultinject bitflip chaos hook)
// long before a multiply would serve it. A corrupt matrix is reported
// through the integrity hooks — the service layer quarantines it — and
// repaired in place by reloading the clean durable copy when one exists.

// ScrubStats summarizes one scrub pass.
type ScrubStats struct {
	Scanned    int64 `json:"scanned"`    // resident matrices verified
	Errors     int64 `json:"errors"`     // matrices with a checksum mismatch
	Repairs    int64 `json:"repairs"`    // corrupt matrices restored from disk
	Unrepaired int64 `json:"unrepaired"` // corrupt matrices with no clean copy
}

// SetIntegrityHooks installs the callbacks the scrubber fires outside the
// catalog lock: onCorrupt when a resident matrix fails checksum
// verification (before any repair attempt), onRepair after it has been
// restored from its durable copy. Either may be nil.
func (c *Catalog) SetIntegrityHooks(onCorrupt func(name, reason string), onRepair func(name string)) {
	c.hookMu.Lock()
	c.onCorrupt = onCorrupt
	c.onRepair = onRepair
	c.hookMu.Unlock()
}

func (c *Catalog) fireOnCorrupt(name, reason string) {
	c.hookMu.Lock()
	f := c.onCorrupt
	c.hookMu.Unlock()
	if f != nil {
		f(name, reason)
	}
}

func (c *Catalog) fireOnRepair(name string) {
	c.hookMu.Lock()
	f := c.onRepair
	c.hookMu.Unlock()
	if f != nil {
		f(name)
	}
}

// ScrubPass verifies the per-tile checksums of every resident matrix once,
// repairing corrupt ones from their durable copies, and returns the pass
// summary. Each matrix is scanned under a read lease, so it cannot be
// spilled or evicted mid-verification; handles already reading a corrupt
// matrix keep their (corrupt) snapshot — the repair protects future
// acquires, and the quarantine hook keeps new jobs off the name until it
// lands.
func (c *Catalog) ScrubPass() ScrubStats {
	var pass ScrubStats
	c.mu.Lock()
	names := make([]string, 0, len(c.entries))
	for name, e := range c.entries {
		if e.m != nil {
			names = append(names, name)
		}
	}
	c.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		c.mu.Lock()
		e, ok := c.entries[name]
		if !ok || e.gone || e.m == nil {
			c.mu.Unlock()
			continue
		}
		m := e.m
		e.refs++ // scrub lease: pins the entry resident for the scan
		c.mu.Unlock()

		if faultinject.Bitflip("catalog.scrub") {
			// Chaos hook: plant a silent single-bit corruption the pass
			// must now detect and repair.
			m.FlipOneBit()
		}
		pass.Scanned++
		if bad := m.VerifyChecksums(); bad >= 0 {
			pass.Errors++
			reason := fmt.Sprintf("scrub: tile %d failed payload CRC", bad)
			c.fireOnCorrupt(name, reason)
			if c.repair(e, m) {
				pass.Repairs++
				c.fireOnRepair(name)
			} else {
				pass.Unrepaired++
			}
		}
		c.releaseRef(e)
	}
	c.scrubPasses.Add(1)
	c.scrubScanned.Add(pass.Scanned)
	c.scrubErrors.Add(pass.Errors)
	c.scrubRepairs.Add(pass.Repairs)
	c.scrubUnrepaired.Add(pass.Unrepaired)
	return pass
}

// repair restores a corrupt resident matrix from its durable copy,
// swapping the fresh tiles in place of the damaged ones. Returns false if
// there is no durable copy, the reload fails its own verification, or the
// entry changed underneath (deleted, or already replaced). The scrub lease
// the caller holds keeps the entry alive throughout.
func (c *Catalog) repair(e *entry, corrupt *core.ATMatrix) bool {
	if c.dataDir == "" || !e.persisted {
		return false
	}
	m, err := c.reload(e)
	if err != nil {
		return false
	}
	bytes := m.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.gone || e.m != corrupt {
		return false
	}
	c.resident += bytes - e.bytes
	e.bytes = bytes
	e.m = m
	e.setMeta(m)
	return true
}

// StartScrubber launches the background scrub loop with the given period;
// a non-positive period disables it. Starting twice is a no-op. The loop
// runs at whatever pace the period dictates — one full pass per tick — and
// stops when Close is called.
func (c *Catalog) StartScrubber(period time.Duration) {
	if period <= 0 {
		return
	}
	c.mu.Lock()
	if c.scrubStop != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.scrubStop, c.scrubDone = stop, done
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.ScrubPass()
			}
		}
	}()
}

// Close stops the background scrubber, if any, and waits for it to exit.
// The catalog itself remains usable; Close exists so tests and shutdown
// paths leave no goroutine behind.
func (c *Catalog) Close() {
	c.mu.Lock()
	stop, done := c.scrubStop, c.scrubDone
	c.scrubStop, c.scrubDone = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
