// Package catalog implements the named-matrix store of the service layer:
// the paper frames AT MATRIX as a storage layout inside a main-memory DBMS,
// where matrices are persistent named objects and multiplications arrive as
// queries against them. The catalog keeps partitioned AT MATRICES resident,
// hands out ref-counted read handles to the job layer, tracks resident
// bytes against a configurable budget, and evicts unpinned entries in LRU
// order when a new matrix would not fit — the buffer-pool role of the
// serving stack.
package catalog

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"atmatrix/internal/core"
	"atmatrix/internal/faultinject"
	"atmatrix/internal/mmio"
)

var (
	// ErrNotFound reports a name with no resident matrix (never loaded,
	// deleted, or evicted).
	ErrNotFound = errors.New("catalog: matrix not found")
	// ErrExists reports a Put against a name that is already resident;
	// delete first — silent replacement under concurrent readers is a
	// correctness trap the catalog refuses to offer.
	ErrExists = errors.New("catalog: matrix already exists")
	// ErrBudget reports that a matrix cannot be admitted because the
	// memory budget is exhausted and everything evictable has been
	// evicted (the rest is pinned or in use by in-flight jobs).
	ErrBudget = errors.New("catalog: memory budget exhausted")
)

// Format identifies the stream format of a load request.
type Format string

const (
	// FormatATM is the partitioned AT MATRIX binary (core.WriteTo).
	FormatATM Format = "atm"
	// FormatMatrixMarket is a MatrixMarket stream, partitioned on load.
	FormatMatrixMarket Format = "mtx"
	// FormatBinaryCOO is the compact binary COO, partitioned on load.
	FormatBinaryCOO Format = "coo"
)

// ParseFormat maps a user-supplied format string to a Format.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatATM, FormatMatrixMarket, FormatBinaryCOO:
		return Format(s), nil
	case "":
		return FormatATM, nil
	default:
		return "", fmt.Errorf("catalog: unknown format %q (want atm, mtx or coo)", s)
	}
}

// Catalog is a concurrent store of named resident AT MATRICES.
type Catalog struct {
	cfg    core.Config
	budget int64 // resident-bytes cap; 0 = unlimited

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recently used
	resident int64

	evictions int64
	hits      int64
	misses    int64
}

// entry is one resident matrix. Its memory is accounted in
// Catalog.resident from admission until the entry is gone *and* no handle
// references it any more.
type entry struct {
	name   string
	m      *core.ATMatrix
	bytes  int64
	refs   int
	pinned bool
	gone   bool // deleted or evicted; unreachable via the map
	elem   *list.Element
}

// New returns a catalog that partitions plain uploads with cfg and caps
// resident bytes at budget (0 = unlimited).
func New(cfg core.Config, budget int64) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("catalog: negative budget %d", budget)
	}
	return &Catalog{
		cfg:     cfg,
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}, nil
}

// Config returns the partitioning configuration loads use.
func (c *Catalog) Config() core.Config { return c.cfg }

// Put admits an already-built AT MATRIX under the given name. A pinned
// entry is never evicted. Admission may evict unpinned, unreferenced
// entries in LRU order to make room; when that is not enough the matrix is
// rejected with ErrBudget, and a matrix larger than the whole budget is
// always rejected.
func (c *Catalog) Put(name string, m *core.ATMatrix, pin bool) error {
	if name == "" {
		return fmt.Errorf("catalog: empty matrix name")
	}
	bytes := m.Bytes()
	if err := faultinject.Do("catalog.put"); err != nil {
		// Chaos hook: simulated admission/allocation failure.
		return fmt.Errorf("catalog: admitting %q: %w", name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		return ErrExists
	}
	if err := c.makeRoom(bytes); err != nil {
		return fmt.Errorf("%w: need %d bytes for %q, budget %d, resident %d", err, bytes, name, c.budget, c.resident)
	}
	e := &entry{name: name, m: m, bytes: bytes, pinned: pin}
	e.elem = c.lru.PushFront(e)
	c.entries[name] = e
	c.resident += bytes
	return nil
}

// makeRoom evicts unpinned, unreferenced LRU entries until need bytes fit
// under the budget. Caller holds c.mu.
func (c *Catalog) makeRoom(need int64) error {
	if c.budget == 0 {
		return nil
	}
	if need > c.budget {
		return ErrBudget
	}
	for c.resident+need > c.budget {
		victim := c.oldestEvictable()
		if victim == nil {
			return ErrBudget
		}
		c.dropLocked(victim)
		c.evictions++
	}
	return nil
}

// oldestEvictable returns the least-recently-used entry with no pins and no
// outstanding handles, or nil. Caller holds c.mu.
func (c *Catalog) oldestEvictable() *entry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if !e.pinned && e.refs == 0 {
			return e
		}
	}
	return nil
}

// dropLocked unlinks an entry from the map and LRU list and releases its
// accounting if no handles keep it alive. Caller holds c.mu.
func (c *Catalog) dropLocked(e *entry) {
	delete(c.entries, e.name)
	c.lru.Remove(e.elem)
	e.gone = true
	if e.refs == 0 {
		c.resident -= e.bytes
	}
}

// Load reads a matrix from the stream in the given format, partitioning
// plain formats with the catalog's configuration, and admits it under the
// name. It returns the admitted matrix's Info.
func (c *Catalog) Load(name string, format Format, r io.Reader, pin bool) (Info, error) {
	var m *core.ATMatrix
	switch format {
	case FormatATM:
		am, err := core.ReadATMatrix(r)
		if err != nil {
			return Info{}, err
		}
		if am.BAtomic != c.cfg.BAtomic {
			// A foreign block size would be rejected by every multiply;
			// rebuild the layout at the catalog's granularity.
			re, _, err := core.Partition(am.ToCOO(), c.cfg)
			if err != nil {
				return Info{}, err
			}
			am = re
		}
		m = am
	case FormatMatrixMarket, FormatBinaryCOO:
		read := mmio.ReadMatrixMarket
		if format == FormatBinaryCOO {
			read = mmio.ReadBinary
		}
		src, err := read(r)
		if err != nil {
			return Info{}, err
		}
		am, _, err := core.Partition(src, c.cfg)
		if err != nil {
			return Info{}, err
		}
		m = am
	default:
		return Info{}, fmt.Errorf("catalog: unknown format %q", format)
	}
	if err := c.Put(name, m, pin); err != nil {
		return Info{}, err
	}
	return c.infoOf(name), nil
}

// Handle is a ref-counted read lease on a resident matrix. The matrix is
// guaranteed to stay alive (never evicted, its memory accounted) until
// Release. Handles may be shared across goroutines for Release purposes
// (the ref count is decremented exactly once no matter how many callers
// race on Release); reading the matrix concurrently is fine since leased
// matrices are immutable.
type Handle struct {
	c        *Catalog
	e        *entry
	released atomic.Bool
}

// Matrix returns the leased AT MATRIX. Callers must treat it as read-only.
func (h *Handle) Matrix() *core.ATMatrix { return h.e.m }

// Name returns the name the matrix was acquired under.
func (h *Handle) Name() string { return h.e.name }

// Release returns the lease. Releasing twice — even concurrently, as when a
// job's deferred cleanup races its retry loop's error path — decrements the
// ref count exactly once.
func (h *Handle) Release() {
	if !h.released.CompareAndSwap(false, true) {
		return
	}
	c := h.c
	c.mu.Lock()
	h.e.refs--
	if h.e.refs == 0 && h.e.gone {
		// The entry was deleted or evicted while we were reading; its
		// memory leaves the accounting only now that the last reader is
		// done with it.
		c.resident -= h.e.bytes
	}
	c.mu.Unlock()
}

// Acquire leases a resident matrix for reading and marks it most recently
// used.
func (c *Catalog) Acquire(name string) (*Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		c.misses++
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	c.hits++
	e.refs++
	c.lru.MoveToFront(e.elem)
	return &Handle{c: c, e: e}, nil
}

// Save writes a resident matrix to path crash-safely (temp file + fsync +
// atomic rename, see core.WriteFile), holding a read lease for the duration
// so the matrix cannot be evicted mid-write. It returns the bytes written.
func (c *Catalog) Save(name, path string) (int64, error) {
	h, err := c.Acquire(name)
	if err != nil {
		return 0, err
	}
	defer h.Release()
	return h.Matrix().WriteFile(path)
}

// Delete removes a matrix from the catalog. Outstanding handles stay
// valid; the memory is released from the accounting when the last one is
// released.
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	c.dropLocked(e)
	return nil
}

// Info describes one resident matrix.
type Info struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	NNZ         int64   `json:"nnz"`
	Bytes       int64   `json:"bytes"`
	TilesSparse int     `json:"tiles_sparse"`
	TilesDense  int     `json:"tiles_dense"`
	Density     float64 `json:"density"`
	Pinned      bool    `json:"pinned"`
	Refs        int     `json:"refs"`
}

func infoFor(e *entry) Info {
	sp, d := e.m.TileCount()
	return Info{
		Name: e.name, Rows: e.m.Rows, Cols: e.m.Cols,
		NNZ: e.m.NNZ(), Bytes: e.bytes,
		TilesSparse: sp, TilesDense: d,
		Density: e.m.Density(),
		Pinned:  e.pinned, Refs: e.refs,
	}
}

// infoOf snapshots one entry's Info; zero Info when absent.
func (c *Catalog) infoOf(name string) Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		return infoFor(e)
	}
	return Info{}
}

// List snapshots all resident matrices in most-recently-used order.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, infoFor(el.Value.(*entry)))
	}
	return out
}

// Stats is a point-in-time snapshot of the catalog counters.
type Stats struct {
	Matrices      int   `json:"matrices"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
	Evictions     int64 `json:"evictions"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
}

// Stats returns the current counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Matrices:      len(c.entries),
		ResidentBytes: c.resident,
		BudgetBytes:   c.budget,
		Evictions:     c.evictions,
		Hits:          c.hits,
		Misses:        c.misses,
	}
}
