// Package catalog implements the named-matrix store of the service layer:
// the paper frames AT MATRIX as a storage layout inside a main-memory DBMS,
// where matrices are persistent named objects and multiplications arrive as
// queries against them. The catalog keeps partitioned AT MATRICES resident,
// hands out ref-counted read handles to the job layer, tracks resident
// bytes against a configurable budget, and evicts unpinned entries in LRU
// order when a new matrix would not fit — the buffer-pool role of the
// serving stack.
//
// With a data directory attached (Open), the catalog is durable: every
// admitted matrix is written through to an .atm file, a crash-safe JSON
// manifest records the file set, LRU pressure spills entries to disk
// instead of destroying them, Acquire transparently reloads spilled
// entries with checksum verification, and Recover rebuilds the catalog
// from the manifest after a restart. See durable.go and scrub.go.
package catalog

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"atmatrix/internal/core"
	"atmatrix/internal/faultinject"
	"atmatrix/internal/mmio"
)

var (
	// ErrNotFound reports a name with no matrix behind it — never loaded,
	// deleted, or evicted without a durable copy. A *spilled* matrix is
	// found: Acquire reloads it from disk instead of failing.
	ErrNotFound = errors.New("catalog: matrix not found")
	// ErrExists reports a Put against a name that is already resident;
	// delete first — silent replacement under concurrent readers is a
	// correctness trap the catalog refuses to offer.
	ErrExists = errors.New("catalog: matrix already exists")
	// ErrBudget reports that a matrix cannot be admitted because the
	// memory budget is exhausted and everything evictable has been
	// evicted or spilled (the rest is pinned or in use by in-flight
	// jobs).
	ErrBudget = errors.New("catalog: memory budget exhausted")
)

// Format identifies the stream format of a load request.
type Format string

const (
	// FormatATM is the partitioned AT MATRIX binary (core.WriteTo).
	FormatATM Format = "atm"
	// FormatMatrixMarket is a MatrixMarket stream, partitioned on load.
	FormatMatrixMarket Format = "mtx"
	// FormatBinaryCOO is the compact binary COO, partitioned on load.
	FormatBinaryCOO Format = "coo"
)

// ParseFormat maps a user-supplied format string to a Format.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatATM, FormatMatrixMarket, FormatBinaryCOO:
		return Format(s), nil
	case "":
		return FormatATM, nil
	default:
		return "", fmt.Errorf("catalog: unknown format %q (want atm, mtx or coo)", s)
	}
}

// Catalog is a concurrent store of named AT MATRICES, resident or spilled.
type Catalog struct {
	cfg     core.Config
	budget  int64  // resident-bytes cap; 0 = unlimited
	dataDir string // "" = memory-only catalog

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recently used; resident entries only
	resident int64

	evictions int64
	hits      int64
	misses    int64
	spills    int64
	reloads   int64
	recovered int64

	gen        atomic.Int64 // per-catalog file-name generation counter
	persisting atomic.Int64 // Put write-throughs in flight (guards orphan sweep)
	manifestMu sync.Mutex   // serializes manifest writes

	hookMu    sync.Mutex
	onCorrupt func(name, reason string)
	onRepair  func(name string)

	scrubPasses     atomic.Int64
	scrubScanned    atomic.Int64
	scrubErrors     atomic.Int64
	scrubRepairs    atomic.Int64
	scrubUnrepaired atomic.Int64
	scrubStop       chan struct{}
	scrubDone       chan struct{}
}

// entry is one named matrix. A resident entry has m != nil and sits in the
// LRU list; a spilled entry has m == nil, lives only on disk, and is
// reloaded by the next Acquire. Its memory is accounted in
// Catalog.resident (counted == true) from admission or reload until it is
// spilled, or gone *and* no handle references it any more.
type entry struct {
	name    string
	m       *core.ATMatrix // nil while spilled
	bytes   int64
	refs    int
	pinned  bool
	gone    bool // deleted or evicted; unreachable via the map
	counted bool // bytes currently included in Catalog.resident
	elem    *list.Element

	// Info-facing metadata, kept valid while spilled so List and Info
	// never force a reload.
	rows, cols  int
	nnz         int64
	tilesSparse int
	tilesDense  int
	density     float64

	// Durability state. file/crc/fileBytes are written once (under c.mu)
	// when the write-through or recovery registers the on-disk copy and
	// are immutable afterwards.
	file      string // file name inside dataDir; "" = not persisted
	crc       uint32 // ATMAT1 footer CRC-32C of the persisted file
	fileBytes int64
	persisted bool
	loading   chan struct{} // non-nil while a reload is in flight

	// shards, when non-nil, is the cluster shard map of this matrix
	// (see ShardMap); it rides along in the durable manifest.
	shards *ShardMap
}

// setMeta refreshes the entry's Info-facing metadata from m.
func (e *entry) setMeta(m *core.ATMatrix) {
	sp, d := m.TileCount()
	e.rows, e.cols = m.Rows, m.Cols
	e.nnz = m.NNZ()
	e.tilesSparse, e.tilesDense = sp, d
	e.density = m.Density()
}

// New returns a memory-only catalog that partitions plain uploads with cfg
// and caps resident bytes at budget (0 = unlimited). Entries evicted under
// pressure are lost; use Open for a durable catalog.
func New(cfg core.Config, budget int64) (*Catalog, error) {
	return Open(cfg, budget, "")
}

// Config returns the partitioning configuration loads use.
func (c *Catalog) Config() core.Config { return c.cfg }

// DataDir returns the backing directory, or "" for a memory-only catalog.
func (c *Catalog) DataDir() string { return c.dataDir }

// Put admits an already-built AT MATRIX under the given name. A pinned
// entry is never evicted. Admission may spill or evict unpinned,
// unreferenced entries in LRU order to make room; when that is not enough
// the matrix is rejected with ErrBudget, and a matrix larger than the
// whole budget is always rejected. With a data directory the admission is
// durable-or-nothing: the matrix is written through to disk and recorded
// in the manifest before Put returns, and a persistence failure rolls the
// admission back.
func (c *Catalog) Put(name string, m *core.ATMatrix, pin bool) error {
	if name == "" {
		return fmt.Errorf("catalog: empty matrix name")
	}
	bytes := m.Bytes()
	if err := faultinject.Do("catalog.put"); err != nil {
		// Chaos hook: simulated admission/allocation failure.
		return fmt.Errorf("catalog: admitting %q: %w", name, err)
	}
	// Seal per-tile integrity checksums before taking the lock: the scrub
	// pass re-verifies them for as long as the matrix is resident.
	m.SealChecksums()
	c.mu.Lock()
	if _, ok := c.entries[name]; ok {
		c.mu.Unlock()
		return ErrExists
	}
	if err := c.makeRoomLocked(bytes); err != nil {
		budget, res := c.budget, c.resident
		c.mu.Unlock()
		return fmt.Errorf("%w: need %d bytes for %q, budget %d, resident %d", err, bytes, name, budget, res)
	}
	e := &entry{name: name, m: m, bytes: bytes, pinned: pin, counted: true}
	e.setMeta(m)
	e.elem = c.lru.PushFront(e)
	c.entries[name] = e
	c.resident += bytes
	c.mu.Unlock()
	if c.dataDir == "" {
		return nil
	}
	if err := c.persist(e, m); err != nil {
		// Roll the admission back: a matrix the store cannot make durable
		// is not admitted at all (outstanding handles, if any raced in,
		// stay valid until released).
		c.mu.Lock()
		if !e.gone {
			c.dropLocked(e)
		}
		c.mu.Unlock()
		return fmt.Errorf("catalog: persisting %q: %w", name, err)
	}
	return c.flushManifest()
}

// makeRoomLocked spills (durable) or evicts (memory-only) unpinned, unreferenced
// LRU entries until need bytes fit under the budget. Caller holds c.mu.
func (c *Catalog) makeRoomLocked(need int64) error {
	if c.budget == 0 {
		return nil
	}
	if need > c.budget {
		return ErrBudget
	}
	for c.resident+need > c.budget {
		victim := c.oldestEvictableLocked()
		if victim == nil {
			return ErrBudget
		}
		if victim.persisted {
			c.spillLocked(victim)
		} else {
			c.dropLocked(victim)
			c.evictions++
		}
	}
	return nil
}

// oldestEvictableLocked returns the least-recently-used entry with no pins and no
// outstanding handles, or nil. With a data directory, an entry whose
// write-through has not completed yet is not a candidate — evicting it
// would lose the only copy of data the caller was promised is durable.
// Caller holds c.mu.
func (c *Catalog) oldestEvictableLocked() *entry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if !e.pinned && e.refs == 0 && (c.dataDir == "" || e.persisted) {
			return e
		}
	}
	return nil
}

// spillLocked drops an entry's in-memory tiles but keeps it in the map: the
// durable copy on disk remains the matrix of record and the next Acquire
// reloads it. Caller holds c.mu; the entry is resident, unreferenced and
// persisted.
func (c *Catalog) spillLocked(e *entry) {
	c.lru.Remove(e.elem)
	e.elem = nil
	e.m = nil
	c.resident -= e.bytes
	e.counted = false
	c.spills++
}

// dropLocked unlinks an entry from the map and LRU list and releases its
// accounting if no handles keep it alive. Caller holds c.mu.
func (c *Catalog) dropLocked(e *entry) {
	delete(c.entries, e.name)
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	e.gone = true
	if e.refs == 0 && e.counted {
		c.resident -= e.bytes
		e.counted = false
	}
}

// Load reads a matrix from the stream in the given format, partitioning
// plain formats with the catalog's configuration, and admits it under the
// name. It returns the admitted matrix's Info.
func (c *Catalog) Load(name string, format Format, r io.Reader, pin bool) (Info, error) {
	var m *core.ATMatrix
	switch format {
	case FormatATM:
		am, err := core.ReadATMatrix(r)
		if err != nil {
			return Info{}, err
		}
		if am.BAtomic != c.cfg.BAtomic {
			// A foreign block size would be rejected by every multiply;
			// rebuild the layout at the catalog's granularity.
			re, _, err := core.Partition(am.ToCOO(), c.cfg)
			if err != nil {
				return Info{}, err
			}
			am = re
		}
		m = am
	case FormatMatrixMarket, FormatBinaryCOO:
		read := mmio.ReadMatrixMarket
		if format == FormatBinaryCOO {
			read = mmio.ReadBinary
		}
		src, err := read(r)
		if err != nil {
			return Info{}, err
		}
		am, _, err := core.Partition(src, c.cfg)
		if err != nil {
			return Info{}, err
		}
		m = am
	default:
		return Info{}, fmt.Errorf("catalog: unknown format %q", format)
	}
	if err := c.Put(name, m, pin); err != nil {
		return Info{}, err
	}
	return c.infoOf(name), nil
}

// Handle is a ref-counted read lease on a resident matrix. The matrix is
// guaranteed to stay alive (never evicted or spilled, its memory
// accounted) until Release. Handles may be shared across goroutines for
// Release purposes (the ref count is decremented exactly once no matter
// how many callers race on Release); reading the matrix concurrently is
// fine since leased matrices are immutable.
type Handle struct {
	c        *Catalog
	e        *entry
	m        *core.ATMatrix
	released atomic.Bool
}

// Matrix returns the leased AT MATRIX. Callers must treat it as read-only.
func (h *Handle) Matrix() *core.ATMatrix { return h.m }

// Name returns the name the matrix was acquired under.
func (h *Handle) Name() string { return h.e.name }

// Release returns the lease. Releasing twice — even concurrently, as when a
// job's deferred cleanup races its retry loop's error path — decrements the
// ref count exactly once.
func (h *Handle) Release() {
	if !h.released.CompareAndSwap(false, true) {
		return
	}
	h.c.releaseRef(h.e)
}

// releaseRef drops one reference and, for a gone entry, lets the last
// reader take the memory out of the accounting.
func (c *Catalog) releaseRef(e *entry) {
	c.mu.Lock()
	e.refs--
	if e.refs == 0 && e.gone && e.counted {
		// The entry was deleted or evicted while it was being read; its
		// memory leaves the accounting only now that the last reader is
		// done with it.
		c.resident -= e.bytes
		e.counted = false
	}
	c.mu.Unlock()
}

// Acquire leases a matrix for reading and marks it most recently used. A
// spilled matrix is transparently reloaded from the data directory —
// verifying both the manifest checksum and the file's own footer — before
// the lease is handed out, so callers never observe the difference between
// resident and spilled beyond latency. Concurrent Acquires of the same
// spilled name share one reload.
func (c *Catalog) Acquire(name string) (*Handle, error) {
	c.mu.Lock()
	for {
		e, ok := c.entries[name]
		if !ok {
			c.misses++
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		if e.m != nil {
			c.hits++
			e.refs++
			c.lru.MoveToFront(e.elem)
			m := e.m
			c.mu.Unlock()
			return &Handle{c: c, e: e, m: m}, nil
		}
		// Spilled. Join a reload already in flight, or run one.
		if ch := e.loading; ch != nil {
			c.mu.Unlock()
			<-ch
			c.mu.Lock()
			continue
		}
		ch := make(chan struct{})
		e.loading = ch
		c.misses++
		c.mu.Unlock()

		m, err := c.reload(e)

		c.mu.Lock()
		e.loading = nil
		close(ch)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if e.gone {
			// Deleted while the reload was off-lock; the name may even be
			// bound to a different matrix by now.
			continue
		}
		bytes := m.Bytes()
		if err := c.makeRoomLocked(bytes); err != nil {
			budget, res := c.budget, c.resident
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: reloading %q needs %d bytes, budget %d, resident %d", err, name, bytes, budget, res)
		}
		e.m = m
		e.bytes = bytes
		e.counted = true
		e.setMeta(m)
		e.elem = c.lru.PushFront(e)
		c.resident += bytes
		c.reloads++
		// Loop: the resident branch hands out the lease.
	}
}

// Save writes a resident matrix to path crash-safely (temp file + fsync +
// atomic rename, see core.WriteFile), holding a read lease for the duration
// so the matrix cannot be evicted mid-write. It returns the bytes written.
func (c *Catalog) Save(name, path string) (int64, error) {
	h, err := c.Acquire(name)
	if err != nil {
		return 0, err
	}
	defer h.Release()
	return h.Matrix().WriteFile(path)
}

// Delete removes a matrix from the catalog, its backing file, and the
// manifest. Outstanding handles stay valid; the memory is released from
// the accounting when the last one is released.
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	file := e.file
	c.dropLocked(e)
	c.mu.Unlock()
	if c.dataDir == "" {
		return nil
	}
	if file != "" {
		c.removeDataFile(file)
	}
	return c.flushManifest()
}

// Info describes one matrix in the catalog.
type Info struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	NNZ         int64   `json:"nnz"`
	Bytes       int64   `json:"bytes"`
	TilesSparse int     `json:"tiles_sparse"`
	TilesDense  int     `json:"tiles_dense"`
	Density     float64 `json:"density"`
	Pinned      bool    `json:"pinned"`
	Refs        int     `json:"refs"`
	Spilled     bool    `json:"spilled,omitempty"`
}

// infoForLocked snapshots one entry's Info. Caller holds c.mu.
func infoForLocked(e *entry) Info {
	return Info{
		Name: e.name, Rows: e.rows, Cols: e.cols,
		NNZ: e.nnz, Bytes: e.bytes,
		TilesSparse: e.tilesSparse, TilesDense: e.tilesDense,
		Density: e.density,
		Pinned:  e.pinned, Refs: e.refs,
		Spilled: e.m == nil,
	}
}

// infoOf snapshots one entry's Info; zero Info when absent.
func (c *Catalog) infoOf(name string) Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		return infoForLocked(e)
	}
	return Info{}
}

// List snapshots all matrices: resident entries in most-recently-used
// order, then spilled entries.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, len(c.entries))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, infoForLocked(el.Value.(*entry)))
	}
	for _, e := range c.entries {
		if e.m == nil {
			out = append(out, infoForLocked(e))
		}
	}
	return out
}

// Stats is a point-in-time snapshot of the catalog counters.
type Stats struct {
	Matrices      int   `json:"matrices"`
	Spilled       int   `json:"spilled"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
	Evictions     int64 `json:"evictions"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Spills        int64 `json:"spills"`
	Reloads       int64 `json:"reloads"`
	Recovered     int64 `json:"recovered"`

	ScrubPasses     int64 `json:"scrub_passes"`
	ScrubScanned    int64 `json:"scrub_scanned"`
	ScrubErrors     int64 `json:"scrub_errors"`
	ScrubRepairs    int64 `json:"scrub_repairs"`
	ScrubUnrepaired int64 `json:"scrub_unrepaired"`
}

// Stats returns the current counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	spilled := 0
	for _, e := range c.entries {
		if e.m == nil {
			spilled++
		}
	}
	s := Stats{
		Matrices:      len(c.entries),
		Spilled:       spilled,
		ResidentBytes: c.resident,
		BudgetBytes:   c.budget,
		Evictions:     c.evictions,
		Hits:          c.hits,
		Misses:        c.misses,
		Spills:        c.spills,
		Reloads:       c.reloads,
		Recovered:     c.recovered,
	}
	c.mu.Unlock()
	s.ScrubPasses = c.scrubPasses.Load()
	s.ScrubScanned = c.scrubScanned.Load()
	s.ScrubErrors = c.scrubErrors.Load()
	s.ScrubRepairs = c.scrubRepairs.Load()
	s.ScrubUnrepaired = c.scrubUnrepaired.Load()
	return s
}
