package catalog

import (
	"sync"
	"testing"
	"time"

	"atmatrix/internal/faultinject"
	"atmatrix/internal/leakcheck"
)

// TestScrubDetectsBitflipAndRepairs is the core integrity loop: an armed
// bitflip rule corrupts a resident matrix mid-pass, the checksum scan
// catches it, the corruption hook fires (the service layer quarantines on
// it), and the matrix is repaired from its durable copy so the next pass
// is clean.
func TestScrubDetectsBitflipAndRepairs(t *testing.T) {
	c := openDurable(t, 0)
	if err := c.Put("a", testMatrix(t, 60, 64, 900), false); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var corrupted, repaired []string
	c.SetIntegrityHooks(
		func(name, reason string) {
			mu.Lock()
			corrupted = append(corrupted, name+": "+reason)
			mu.Unlock()
		},
		func(name string) {
			mu.Lock()
			repaired = append(repaired, name)
			mu.Unlock()
		},
	)
	defer faultinject.Enable(1, faultinject.Rule{
		Site: "catalog.scrub", Kind: faultinject.KindBitflip, Count: 1,
	})()
	pass := c.ScrubPass()
	if pass.Scanned != 1 || pass.Errors != 1 || pass.Repairs != 1 || pass.Unrepaired != 0 {
		t.Fatalf("bitflip pass = %+v, want 1 scanned, 1 error, 1 repair", pass)
	}
	if len(corrupted) != 1 || len(repaired) != 1 || repaired[0] != "a" {
		t.Fatalf("hooks: corrupted=%v repaired=%v, want one of each for %q", corrupted, repaired, "a")
	}
	// The repaired matrix is clean: the next pass (fault window closed)
	// finds nothing, and an acquire hands out a verifiable matrix.
	if pass := c.ScrubPass(); pass.Errors != 0 {
		t.Fatalf("pass after repair = %+v, want clean", pass)
	}
	h, err := c.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if bad := h.Matrix().VerifyChecksums(); bad != -1 {
		t.Fatalf("repaired matrix still corrupt at tile %d", bad)
	}
	st := c.Stats()
	if st.ScrubPasses != 2 || st.ScrubErrors != 1 || st.ScrubRepairs != 1 {
		t.Fatalf("cumulative scrub stats = %+v", st)
	}
}

// TestScrubBitflipUnrepairedWithoutDurableCopy: a memory-only catalog can
// detect corruption but has nothing to repair from; the pass reports the
// matrix unrepaired and the corruption hook still fires so the service can
// quarantine the name.
func TestScrubBitflipUnrepairedWithoutDurableCopy(t *testing.T) {
	c, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", testMatrix(t, 61, 64, 900), false); err != nil {
		t.Fatal(err)
	}
	var corrupt int
	c.SetIntegrityHooks(func(string, string) { corrupt++ }, nil)
	defer faultinject.Enable(1, faultinject.Rule{
		Site: "catalog.scrub", Kind: faultinject.KindBitflip, Count: 1,
	})()
	pass := c.ScrubPass()
	if pass.Errors != 1 || pass.Repairs != 0 || pass.Unrepaired != 1 {
		t.Fatalf("memory-only bitflip pass = %+v, want 1 error, 0 repairs, 1 unrepaired", pass)
	}
	if corrupt != 1 {
		t.Fatalf("corruption hook fired %d times, want 1", corrupt)
	}
}

// TestScrubSkipsSpilledEntries: the scrubber verifies resident memory; a
// spilled entry has no resident tiles to rot, and its disk copy is already
// guarded by the reload checksum chain.
func TestScrubSkipsSpilledEntries(t *testing.T) {
	c := openDurable(t, 0)
	if err := c.Put("a", testMatrix(t, 62, 64, 900), false); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.spillLocked(c.entries["a"])
	c.mu.Unlock()
	if pass := c.ScrubPass(); pass.Scanned != 0 {
		t.Fatalf("scrub scanned %d spilled entries, want 0", pass.Scanned)
	}
}

// TestScrubberBackgroundLoopStopsClean: the periodic scrubber makes
// passes on its own and Close reliably tears it down (leakcheck enforces
// the goroutine is gone).
func TestScrubberBackgroundLoopStopsClean(t *testing.T) {
	leakcheck.Check(t)
	c := openDurable(t, 0)
	if err := c.Put("a", testMatrix(t, 63, 48, 500), false); err != nil {
		t.Fatal(err)
	}
	c.StartScrubber(2 * time.Millisecond)
	c.StartScrubber(2 * time.Millisecond) // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().ScrubPasses < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber made no passes")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	c.Close() // idempotent
	passes := c.Stats().ScrubPasses
	time.Sleep(10 * time.Millisecond)
	if got := c.Stats().ScrubPasses; got != passes {
		t.Fatalf("scrubber still running after Close: %d -> %d passes", passes, got)
	}
}

// TestConcurrentScrubAcquireDelete races scrub passes against acquires,
// deletes and re-puts of the same names. Run under -race; the invariant is
// no panic, no deadlock, and balanced accounting afterwards.
func TestConcurrentScrubAcquireDelete(t *testing.T) {
	leakcheck.Check(t)
	c := openDurable(t, 0)
	names := []string{"x", "y"}
	for i, name := range names {
		if err := c.Put(name, testMatrix(t, int64(70+i), 48, 500), false); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	scrubDone := make(chan struct{})
	go func() {
		defer close(scrubDone)
		for {
			select {
			case <-stop:
				return
			default:
				c.ScrubPass()
			}
		}
	}()
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if h, err := c.Acquire(name); err == nil {
					h.Release()
				}
				if i%5 == 4 {
					if err := c.Delete(name); err == nil {
						_ = c.Put(name, testMatrix(t, int64(80+i), 48, 500), false)
					}
				}
			}
		}(name)
	}
	wg.Wait()
	close(stop)
	<-scrubDone
	for _, name := range names {
		_ = c.Delete(name)
	}
	if st := c.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("resident bytes = %d after deleting everything", st.ResidentBytes)
	}
}
