package catalog

import "fmt"

// ShardMap records how one cataloged matrix is sharded across cluster
// workers: which tile-row bands each shard owns, the CRC-32C fingerprint
// of the shard's .atm stream (the coordinator regenerates shard bytes from
// its local copy deterministically, so the fingerprint identifies content,
// not a file), and the durable replica set holding it. The coordinator
// builds and maintains it; the catalog only stores it — in memory and,
// on a durable catalog, in the manifest, so a restarting coordinator
// recovers the placement without re-shipping every shard.
type ShardMap struct {
	// Generation distinguishes shard sets across re-admissions of a name;
	// workers key their stores by (name, generation, shard) and the exec
	// references carry it, so a stale shard from an earlier generation can
	// never satisfy a current reference.
	Generation  int64       `json:"generation"`
	Replication int         `json:"replication"`
	Shards      []ShardMeta `json:"shards"`
}

// ShardMeta is one shard's row in the map.
type ShardMeta struct {
	ID int `json:"id"`
	// Bands are the tile-row band indices this shard owns (the §III-F
	// round-robin assignment). Tiles spanning into an owned band ride
	// along whole, so the shard's tile set is derivable from the matrix
	// plus this list alone.
	Bands []int `json:"bands"`
	// CRC32C and Bytes fingerprint the shard's serialized stream.
	CRC32C uint32 `json:"crc32c"`
	Bytes  int64  `json:"bytes"`
	// Primary is the worker address currently fronting this shard;
	// Replicas is the full durable holder set (primary included), in ring
	// order. Failover re-points Primary at a surviving replica.
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas"`
}

// Clone deep-copies the map so callers can mutate their view without
// racing the catalog's stored copy.
func (sm *ShardMap) Clone() *ShardMap {
	if sm == nil {
		return nil
	}
	out := &ShardMap{Generation: sm.Generation, Replication: sm.Replication}
	out.Shards = make([]ShardMeta, len(sm.Shards))
	for i, s := range sm.Shards {
		s.Bands = append([]int(nil), s.Bands...)
		s.Replicas = append([]string(nil), s.Replicas...)
		out.Shards[i] = s
	}
	return out
}

// SetShardMap records (or, with nil, clears) the shard map of a cataloged
// matrix and persists it through the manifest on a durable catalog. The
// map is stored as a private copy.
func (c *Catalog) SetShardMap(name string, sm *ShardMap) error {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok || e.gone {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.shards = sm.Clone()
	c.mu.Unlock()
	return c.flushManifest()
}

// ShardMapOf returns a copy of the named matrix's shard map, or false when
// the matrix is absent or unsharded.
func (c *Catalog) ShardMapOf(name string) (*ShardMap, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok || e.gone || e.shards == nil {
		return nil, false
	}
	return e.shards.Clone(), true
}

// ShardMaps snapshots every recorded shard map by matrix name — the
// coordinator's recovery source after a restart.
func (c *Catalog) ShardMaps() map[string]*ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*ShardMap)
	for name, e := range c.entries {
		if !e.gone && e.shards != nil {
			out[name] = e.shards.Clone()
		}
	}
	return out
}

// NextGeneration hands out a fresh shard-map generation from the catalog's
// monotonic counter (the same counter that versions backing file names;
// Recover advances it past every recovered value, so generations stay
// unique across restarts).
func (c *Catalog) NextGeneration() int64 { return c.gen.Add(1) }
