package catalog

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"atmatrix/internal/core"
	"atmatrix/internal/faultinject"
	"atmatrix/internal/leakcheck"
)

// openDurable builds a durable catalog over a fresh temp dir.
func openDurable(t *testing.T, budget int64) *Catalog {
	t.Helper()
	c, err := Open(testConfig(), budget, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// serialize returns the canonical ATMAT1 bytes of a matrix, the equality
// fingerprint the durability tests compare across spill/reload/restart.
func serialize(t *testing.T, m *core.ATMatrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSpillAndReloadRoundTrip(t *testing.T) {
	m1 := testMatrix(t, 21, 64, 900)
	m2 := testMatrix(t, 22, 64, 900)
	want := serialize(t, m1)
	// Budget fits one matrix at a time: admitting the second must spill
	// the first, not destroy it.
	budget := m1.Bytes() + m2.Bytes()/2
	c, err := Open(testConfig(), budget, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", m1, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", m2, false); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Spills != 1 || st.Evictions != 0 {
		t.Fatalf("stats after pressure: spills=%d evictions=%d, want 1 spill, 0 evictions", st.Spills, st.Evictions)
	}
	if info := c.infoOf("a"); !info.Spilled {
		t.Fatalf("entry a not marked spilled: %+v", info)
	}
	// The spilled name is *found* — Acquire reloads it transparently.
	h, err := c.Acquire("a")
	if err != nil {
		t.Fatalf("Acquire of spilled matrix: %v", err)
	}
	defer h.Release()
	if got := serialize(t, h.Matrix()); !bytes.Equal(got, want) {
		t.Fatal("reloaded matrix bytes differ from the admitted matrix")
	}
	st = c.Stats()
	if st.Reloads != 1 {
		t.Fatalf("reloads = %d, want 1", st.Reloads)
	}
	// The reload displaced b in turn; total spills grew.
	if st.Spills < 2 {
		t.Fatalf("spills = %d after reload under pressure, want >= 2", st.Spills)
	}
}

func TestSpilledReloadVerifiesChecksum(t *testing.T) {
	c := openDurable(t, 0)
	m := testMatrix(t, 23, 64, 900)
	if err := c.Put("a", m, false); err != nil {
		t.Fatal(err)
	}
	// Force a spill by hand via the pressure path: a second catalog over
	// the same dir is cheating, so instead drop residency directly.
	c.mu.Lock()
	c.spillLocked(c.entries["a"])
	file := c.entries["a"].file
	c.mu.Unlock()
	// Corrupt one payload byte on disk; the footer CRC no longer matches,
	// and reload must refuse the bytes rather than serve them.
	path := filepath.Join(c.DataDir(), file)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = c.Acquire("a")
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire of corrupted spilled matrix: %v, want a checksum error distinct from ErrNotFound", err)
	}
	if !errors.Is(err, core.ErrChecksum) {
		t.Fatalf("Acquire of corrupted spilled matrix: %v, want core.ErrChecksum", err)
	}
	// A name that never existed still reads as ErrNotFound.
	if _, err := c.Acquire("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire of unknown name: %v, want ErrNotFound", err)
	}
}

func TestRecoverAfterRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	mPinned := testMatrix(t, 24, 64, 900)
	mLazy := testMatrix(t, 25, 48, 500)
	wantPinned := serialize(t, mPinned)
	wantLazy := serialize(t, mLazy)

	c1, err := Open(cfg, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("pinned", mPinned, true); err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("lazy", mLazy, false); err != nil {
		t.Fatal(err)
	}
	// No shutdown, no flush call: the write-through already made both
	// durable. c1 is simply abandoned, as a crash would leave it.

	c2, err := Open(cfg, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Registered != 2 || rs.Loaded != 1 || len(rs.Failed) != 0 {
		t.Fatalf("recover stats = %+v, want 2 registered, 1 loaded, 0 failed", rs)
	}
	// Pinned is resident after boot; lazy is registered but spilled.
	if info := c2.infoOf("pinned"); info.Spilled || !info.Pinned {
		t.Fatalf("pinned entry after recover: %+v, want resident and pinned", info)
	}
	if info := c2.infoOf("lazy"); !info.Spilled {
		t.Fatalf("lazy entry after recover: %+v, want spilled", info)
	}
	for name, want := range map[string][]byte{"pinned": wantPinned, "lazy": wantLazy} {
		h, err := c2.Acquire(name)
		if err != nil {
			t.Fatalf("Acquire(%q) after recover: %v", name, err)
		}
		if got := serialize(t, h.Matrix()); !bytes.Equal(got, want) {
			t.Fatalf("matrix %q differs across restart", name)
		}
		h.Release()
	}
	// The recovered operands multiply: end-to-end the restart preserved
	// usable matrices, not just parseable files.
	hp, _ := c2.Acquire("pinned")
	defer hp.Release()
	if _, _, err := core.MultiplyOpt(hp.Matrix(), hp.Matrix(), cfg, core.DefaultMultOptions()); err != nil {
		t.Fatalf("multiply on recovered matrix: %v", err)
	}
}

func TestRecoverTwiceIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(testConfig(), 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("a", testMatrix(t, 26, 64, 900), true); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(testConfig(), 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs, err := c2.Recover(); err != nil || rs.Registered != 1 {
		t.Fatalf("first recover: %+v, %v", rs, err)
	}
	rs, err := c2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Registered != 0 || rs.Skipped != 1 {
		t.Fatalf("second recover = %+v, want 0 registered, 1 skipped", rs)
	}
	if st := c2.Stats(); st.Matrices != 1 {
		t.Fatalf("matrices after double recover = %d, want 1", st.Matrices)
	}
}

func TestRecoverFreshDirSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	// A crash before the first manifest write leaves a bare .atm file and
	// a stale temp file; neither was durably admitted.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef-1.atm"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".atm-123.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(testConfig(), 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Registered != 0 {
		t.Fatalf("recover of fresh dir registered %d entries", rs.Registered)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("orphans survived recover: %v", ents)
	}
}

func TestRecoverDeleteDropsEntryDurably(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(testConfig(), 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("a", testMatrix(t, 27, 64, 900), false); err != nil {
		t.Fatal(err)
	}
	if err := c1.Delete("a"); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(testConfig(), 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs, err := c2.Recover(); err != nil || rs.Registered != 0 {
		t.Fatalf("recover after delete: %+v, %v — the deletion was not durable", rs, err)
	}
	if _, err := c2.Acquire("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted matrix resurrected: %v", err)
	}
}

// TestPutPersistFaultRollsBack: when the write-through cannot reach disk,
// the admission is rolled back entirely — a durable catalog never holds a
// matrix it cannot promise back after a crash.
func TestPutPersistFaultRollsBack(t *testing.T) {
	c := openDurable(t, 0)
	defer faultinject.Enable(1, faultinject.Rule{
		Site: "core.writefile", Kind: faultinject.KindError, Count: 1,
	})()
	err := c.Put("a", testMatrix(t, 28, 64, 900), false)
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put under write fault: %v, want injected error", err)
	}
	if _, err := c.Acquire("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rolled-back matrix still acquirable: %v", err)
	}
	if st := c.Stats(); st.ResidentBytes != 0 || st.Matrices != 0 {
		t.Fatalf("stats after rollback: %+v, want empty catalog", st)
	}
	// The fault window has passed; the same Put now succeeds.
	if err := c.Put("a", testMatrix(t, 28, 64, 900), false); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSpillReloadStorm hammers Acquire/Release over a working
// set roughly twice the budget, so every acquire round-trips through the
// spill/reload machinery while other goroutines race it. Run under -race;
// leakcheck asserts nothing is left behind.
func TestConcurrentSpillReloadStorm(t *testing.T) {
	leakcheck.Check(t)
	names := []string{"s0", "s1", "s2", "s3"}
	mats := make(map[string]*core.ATMatrix, len(names))
	var total int64
	for i, name := range names {
		m := testMatrix(t, int64(30+i), 64, 900)
		mats[name] = m
		total += m.Bytes()
	}
	c, err := Open(testConfig(), total/2+1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fingerprint := make(map[string][]byte, len(names))
	for name, m := range mats {
		fingerprint[name] = serialize(t, m)
		if err := c.Put(name, m, false); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 30; i++ {
				name := names[rng.Intn(len(names))]
				h, err := c.Acquire(name)
				if err != nil {
					// Budget contention with every goroutine holding a
					// lease is legal; data loss is not.
					if errors.Is(err, ErrBudget) {
						continue
					}
					t.Errorf("Acquire(%q): %v", name, err)
					return
				}
				if h.Matrix().NNZ() != mats[name].NNZ() {
					t.Errorf("matrix %q: nnz changed across spill/reload", name)
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	// Quiesced: every matrix must still round-trip bit-identically.
	for _, name := range names {
		h, err := c.Acquire(name)
		if err != nil {
			t.Fatalf("Acquire(%q) after storm: %v", name, err)
		}
		if !bytes.Equal(serialize(t, h.Matrix()), fingerprint[name]) {
			t.Fatalf("matrix %q corrupted by spill/reload storm", name)
		}
		h.Release()
	}
	st := c.Stats()
	if st.Reloads == 0 || st.Spills == 0 {
		t.Fatalf("storm exercised no spill/reload: %+v", st)
	}
}

// TestConcurrentSaveDeleteRace races Save (which leases the entry and
// writes it out) against Delete (which removes the backing file): every
// interleaving must yield either a complete, loadable save or a clean
// ErrNotFound — never a torn file or a deadlock. Run under -race.
func TestConcurrentSaveDeleteRace(t *testing.T) {
	leakcheck.Check(t)
	out := t.TempDir()
	for iter := 0; iter < 20; iter++ {
		c := openDurable(t, 0)
		m := testMatrix(t, int64(40+iter), 48, 500)
		if err := c.Put("a", m, false); err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(out, "saved.atm")
		var wg sync.WaitGroup
		wg.Add(2)
		errs := make([]error, 2)
		go func() {
			defer wg.Done()
			_, errs[0] = c.Save("a", dst)
		}()
		go func() {
			defer wg.Done()
			errs[1] = c.Delete("a")
		}()
		wg.Wait()
		if errs[1] != nil {
			t.Fatalf("iter %d: Delete: %v", iter, errs[1])
		}
		switch {
		case errs[0] == nil:
			if _, err := core.ReadATMatrixFile(dst); err != nil {
				t.Fatalf("iter %d: save reported success but file unreadable: %v", iter, err)
			}
		case errors.Is(errs[0], ErrNotFound):
			// Delete won the race before the lease; fine.
		default:
			t.Fatalf("iter %d: Save: %v", iter, errs[0])
		}
		if st := c.Stats(); st.ResidentBytes != 0 {
			t.Fatalf("iter %d: resident bytes = %d after delete and save done", iter, st.ResidentBytes)
		}
	}
}

// TestConcurrentRecoverAcquire runs Recover twice concurrently with a
// stream of Acquires: recovery must be idempotent and never hand out a
// broken entry. Run under -race.
func TestConcurrentRecoverAcquire(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	c1, err := Open(testConfig(), 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name := string(rune('a' + i))
		if err := c1.Put(name, testMatrix(t, int64(50+i), 48, 500), i == 0); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := Open(testConfig(), 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c2.Recover(); err != nil {
				t.Errorf("Recover: %v", err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			h, err := c2.Acquire("a")
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					continue // recovery has not registered it yet
				}
				t.Errorf("Acquire during recover: %v", err)
				return
			}
			if h.Matrix() == nil {
				t.Error("nil matrix behind a valid handle")
			}
			h.Release()
		}
	}()
	wg.Wait()
	if st := c2.Stats(); st.Matrices != 3 {
		t.Fatalf("matrices after concurrent recover = %d, want 3", st.Matrices)
	}
}
