package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"atmatrix/internal/core"
	"atmatrix/internal/mat"
	"atmatrix/internal/mmio"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.LLCBytes = 3 * 8 * 64 * 64
	cfg.BAtomic = 8
	cfg.Topology.Sockets = 2
	cfg.Topology.CoresPerSocket = 2
	return cfg
}

func testMatrix(t *testing.T, seed int64, dim, nnz int) *core.ATMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	am, _, err := core.Partition(mat.RandomCOO(rng, dim, dim, nnz), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return am
}

func TestPutAcquireDelete(t *testing.T) {
	c, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix(t, 1, 64, 600)
	if err := c.Put("a", m, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", m, false); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Put: got %v, want ErrExists", err)
	}
	h, err := c.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if h.Matrix() != m {
		t.Fatal("handle returned a different matrix")
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire after delete: got %v, want ErrNotFound", err)
	}
	// The deleted entry's bytes stay accounted until the reader is done.
	if got := c.Stats().ResidentBytes; got != m.Bytes() {
		t.Fatalf("resident %d while a handle is out, want %d", got, m.Bytes())
	}
	h.Release()
	h.Release() // double release is a no-op
	if got := c.Stats().ResidentBytes; got != 0 {
		t.Fatalf("resident %d after last release, want 0", got)
	}
	if err := c.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
}

func TestLRUEviction(t *testing.T) {
	// One matrix stored under several names keeps the sizes identical;
	// the budget fits exactly two copies.
	m := testMatrix(t, 2, 64, 600)
	per := m.Bytes()
	c, err := New(testConfig(), 2*per)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", m, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", m, false); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" becomes the LRU victim.
	h, err := c.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := c.Put("c", m, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU victim still resident: %v", err)
	}
	if _, err := c.Acquire("a"); err != nil {
		t.Fatalf("recently used entry evicted: %v", err)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.ResidentBytes != 2*per {
		t.Fatalf("resident = %d, want %d", st.ResidentBytes, 2*per)
	}
}

func TestBudgetRejectsWhenNothingEvictable(t *testing.T) {
	m := testMatrix(t, 5, 64, 600)
	per := m.Bytes()
	// Budget fits exactly the pinned and the held copy, nothing more.
	c, err := New(testConfig(), 2*per)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("pinned", m, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("held", m, false); err != nil {
		t.Fatal(err)
	}
	h, err := c.Acquire("held")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	// Pinned and in-use entries both resist eviction: no room.
	if err := c.Put("c", m, false); !errors.Is(err, ErrBudget) {
		t.Fatalf("Put with nothing evictable: got %v, want ErrBudget", err)
	}
	// A matrix bigger than the whole budget is rejected outright.
	big := testMatrix(t, 8, 128, 6000)
	if big.Bytes() <= 2*per {
		t.Fatalf("test matrix not big enough: %d <= %d", big.Bytes(), 2*per)
	}
	empty, _ := New(testConfig(), 2*per)
	if err := empty.Put("big", big, false); !errors.Is(err, ErrBudget) {
		t.Fatalf("oversized Put: got %v, want ErrBudget", err)
	}
}

func TestLoadFormats(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(9))
	coo := mat.RandomCOO(rng, 64, 64, 600)
	am, _, err := core.Partition(coo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var atm, mm, bin bytes.Buffer
	if _, err := am.WriteTo(&atm); err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteMatrixMarket(&mm, coo); err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteBinary(&bin, coo); err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]struct {
		f Format
		b *bytes.Buffer
	}{
		"a": {FormatATM, &atm},
		"m": {FormatMatrixMarket, &mm},
		"b": {FormatBinaryCOO, &bin},
	} {
		info, err := c.Load(name, src.f, src.b, false)
		if err != nil {
			t.Fatalf("load %q (%s): %v", name, src.f, err)
		}
		if info.Rows != 64 || info.Cols != 64 || info.NNZ != am.NNZ() {
			t.Fatalf("load %q: info %+v", name, info)
		}
	}
	// All three loads must agree on content.
	ha, _ := c.Acquire("a")
	hm, _ := c.Acquire("m")
	defer ha.Release()
	defer hm.Release()
	if !ha.Matrix().ToDense().EqualApprox(hm.Matrix().ToDense(), 0) {
		t.Fatal("atm and mtx loads differ")
	}
	// A corrupt ATM upload surfaces the typed checksum error.
	var good bytes.Buffer
	if _, err := am.WriteTo(&good); err != nil {
		t.Fatal(err)
	}
	bad := good.Bytes()
	bad[len(bad)-10] ^= 0x01
	if _, err := c.Load("corrupt", FormatATM, bytes.NewReader(bad), false); !errors.Is(err, core.ErrChecksum) {
		t.Fatalf("corrupt upload: got %v, want core.ErrChecksum", err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	c, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(fmt.Sprintf("m%d", i), testMatrix(t, int64(10+i), 64, 600), false); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("m%d", (g+i)%4)
				h, err := c.Acquire(name)
				if err != nil {
					t.Errorf("acquire %s: %v", name, err)
					return
				}
				_ = h.Matrix().NNZ()
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Matrices != 4 {
		t.Fatalf("matrices = %d, want 4", st.Matrices)
	}
	for _, info := range c.List() {
		if info.Refs != 0 {
			t.Fatalf("leaked refs on %s: %d", info.Name, info.Refs)
		}
	}
}
