package catalog

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"atmatrix/internal/core"
	"atmatrix/internal/faultinject"
)

// TestConcurrentDoubleReleaseDropsOneRef is the regression test for the
// handle ref-count audit: a handle released from several goroutines at once
// (a job's deferred cleanup racing its retry loop's error path) must
// decrement the ref count exactly once, so the entry stays evictable and the
// resident-bytes accounting stays balanced.
func TestConcurrentDoubleReleaseDropsOneRef(t *testing.T) {
	c, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix(t, 3, 64, 600)
	if err := c.Put("a", m, false); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 50; iter++ {
		h, err := c.Acquire("a")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h.Release()
			}()
		}
		wg.Wait()
	}
	infos := c.List()
	if len(infos) != 1 || infos[0].Refs != 0 {
		t.Fatalf("after release storm: %+v, want one entry with 0 refs", infos)
	}
	// Refs at zero means the entry is evictable and deletable, and the
	// accounting drains to zero on delete.
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("resident bytes = %d after delete with no handles, want 0", st.ResidentBytes)
	}
}

// TestReleaseAfterDeleteBalancesAccounting covers the deferred-accounting
// path: deleting a matrix with outstanding handles keeps its bytes resident
// until the last (possibly concurrent) release.
func TestReleaseAfterDeleteBalancesAccounting(t *testing.T) {
	c, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", testMatrix(t, 4, 64, 600), false); err != nil {
		t.Fatal(err)
	}
	h1, err := c.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentBytes == 0 {
		t.Fatal("resident bytes dropped to 0 with handles outstanding")
	}
	var wg sync.WaitGroup
	for _, h := range []*Handle{h1, h2} {
		for g := 0; g < 3; g++ { // each handle raced by several releasers
			wg.Add(1)
			go func(h *Handle) {
				defer wg.Done()
				h.Release()
			}(h)
		}
	}
	wg.Wait()
	if st := c.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("resident bytes = %d after last release, want 0", st.ResidentBytes)
	}
}

// TestPutAllocFaultRejectsCleanly checks the chaos hook in admission: an
// injected allocation failure rejects the Put with the typed error and
// leaves the catalog consistent.
func TestPutAllocFaultRejectsCleanly(t *testing.T) {
	c, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix(t, 5, 64, 600)
	defer faultinject.Enable(1, faultinject.Rule{
		Site: "catalog.put", Kind: faultinject.KindAlloc,
	})()
	if err := c.Put("a", m, false); !errors.Is(err, faultinject.ErrInjectedAlloc) {
		t.Fatalf("Put under alloc fault: %v, want ErrInjectedAlloc", err)
	}
	if st := c.Stats(); st.Matrices != 0 || st.ResidentBytes != 0 {
		t.Fatalf("catalog not clean after rejected Put: %+v", st)
	}
	// The rule fired once; the retry succeeds.
	if err := c.Put("a", m, false); err != nil {
		t.Fatalf("Put after fault window: %v", err)
	}
}

// TestSaveWritesLoadableFile checks Save's crash-safe write end to end: the
// saved file reloads as FormatATM with identical content.
func TestSaveWritesLoadableFile(t *testing.T) {
	c, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix(t, 6, 64, 600)
	if err := c.Put("a", m, false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.atm")
	n, err := c.Save("a", path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Save reported 0 bytes")
	}
	back, err := core.ReadATMatrixFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ToDense().EqualApprox(m.ToDense(), 0) {
		t.Fatal("saved file content differs from resident matrix")
	}
	if _, err := c.Save("missing", path); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Save of absent matrix: %v, want ErrNotFound", err)
	}
	// Save must not leak its read lease.
	if infos := c.List(); infos[0].Refs != 0 {
		t.Fatalf("refs = %d after Save, want 0", infos[0].Refs)
	}
}
