// Package mmio reads and writes sparse matrices in the MatrixMarket
// exchange format used by the Florida (SuiteSparse) collection the paper
// draws its real-world matrices from, plus a compact binary COO format for
// fast reloading of generated matrices.
//
// Supported MatrixMarket variants: `matrix coordinate real|integer|pattern
// general|symmetric|skew-symmetric` and `matrix array real general`.
// Symmetric inputs are expanded to their full (general) form on read,
// matching what the multiplication operators expect.
package mmio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"

	"atmatrix/internal/mat"
)

// ReadMatrixMarket parses a MatrixMarket stream into a COO staging matrix.
func ReadMatrixMarket(r io.Reader) (*mat.COO, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("mmio: reading header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("mmio: malformed MatrixMarket header %q", header)
	}
	layout, valType, symmetry := fields[2], fields[3], fields[4]
	switch layout {
	case "coordinate", "array":
	default:
		return nil, fmt.Errorf("mmio: unsupported layout %q", layout)
	}
	switch valType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mmio: unsupported value type %q", valType)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", symmetry)
	}
	if layout == "array" && (valType == "pattern" || symmetry != "general") {
		return nil, fmt.Errorf("mmio: array layout supports only real general")
	}

	// Skip comments, read the size line.
	var sizeLine string
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("mmio: reading size line: %w", err)
		}
		if strings.HasPrefix(line, "%") || strings.TrimSpace(line) == "" {
			continue
		}
		sizeLine = line
		break
	}
	sz := strings.Fields(sizeLine)
	if layout == "array" {
		if len(sz) != 2 {
			return nil, fmt.Errorf("mmio: malformed array size line %q", sizeLine)
		}
	} else if len(sz) != 3 {
		return nil, fmt.Errorf("mmio: malformed coordinate size line %q", sizeLine)
	}
	rows, err := strconv.Atoi(sz[0])
	if err != nil {
		return nil, fmt.Errorf("mmio: bad row count %q", sz[0])
	}
	cols, err := strconv.Atoi(sz[1])
	if err != nil {
		return nil, fmt.Errorf("mmio: bad column count %q", sz[1])
	}
	if rows < 0 || cols < 0 || rows > 1<<31 || cols > 1<<31 {
		return nil, fmt.Errorf("mmio: unreasonable dimensions %d×%d", rows, cols)
	}
	out := mat.NewCOO(rows, cols)

	if layout == "array" {
		// Column-major dense enumeration.
		for c := 0; c < cols; c++ {
			for r := 0; r < rows; r++ {
				tok, err := nextToken(br)
				if err != nil {
					return nil, fmt.Errorf("mmio: array entry (%d,%d): %w", r, c, err)
				}
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, fmt.Errorf("mmio: array value %q: %w", tok, err)
				}
				if v != 0 {
					out.Append(r, c, v)
				}
			}
		}
		return out, nil
	}

	nnz, err := strconv.Atoi(sz[2])
	if err != nil {
		return nil, fmt.Errorf("mmio: bad nnz %q", sz[2])
	}
	if nnz < 0 || int64(nnz) > int64(rows)*int64(cols) {
		return nil, fmt.Errorf("mmio: header claims %d entries for a %d×%d matrix", nnz, rows, cols)
	}
	for i := 0; i < nnz; i++ {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d/%d: %w", i+1, nnz, err)
		}
		f := strings.Fields(line)
		want := 3
		if valType == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("mmio: entry %d: malformed line %q", i+1, line)
		}
		r, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d: bad row %q", i+1, f[0])
		}
		c, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d: bad column %q", i+1, f[1])
		}
		v := 1.0
		if valType != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: entry %d: bad value %q", i+1, f[2])
			}
		}
		r-- // MatrixMarket is 1-based
		c--
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return nil, fmt.Errorf("mmio: entry %d: coordinate (%d,%d) outside %d×%d", i+1, r+1, c+1, rows, cols)
		}
		out.Append(r, c, v)
		if r != c {
			switch symmetry {
			case "symmetric":
				out.Append(c, r, v)
			case "skew-symmetric":
				out.Append(c, r, -v)
			}
		}
	}
	return out, nil
}

// WriteMatrixMarket writes a COO matrix in `coordinate real general` form.
func WriteMatrixMarket(w io.Writer, a *mat.COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return fmt.Errorf("mmio: writing header: %w", err)
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Rows, a.Cols, len(a.Ent)); err != nil {
		return fmt.Errorf("mmio: writing size line: %w", err)
	}
	for _, e := range a.Ent {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.Row+1, e.Col+1, e.Val); err != nil {
			return fmt.Errorf("mmio: writing entry: %w", err)
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the compact binary COO format.
const binaryMagic = "ATMCOO1\n"

var (
	// ErrBadMagic reports a stream that does not start with the binary COO
	// magic — it is some other file format entirely.
	ErrBadMagic = errors.New("mmio: bad binary COO magic")
	// ErrChecksum reports a binary COO stream whose CRC-32C footer does not
	// match its content: the bytes were damaged in transfer or at rest.
	ErrChecksum = errors.New("mmio: binary COO checksum mismatch")
)

// cooCastagnoli is the CRC-32C table for the binary COO footer.
var cooCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteBinary writes the compact binary COO representation: a magic
// string, little-endian int64 rows/cols/nnz, then packed
// <int32,int32,float64> triples — exactly the Table I "Bin. Size" layout —
// followed by a CRC-32C footer over every preceding byte, mirroring the
// .atm tile-stream codec so uploads shipped over a wire are
// corruption-detectable end to end.
func WriteBinary(w io.Writer, a *mat.COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	crc := crc32.New(cooCastagnoli)
	hw := io.MultiWriter(bw, crc)
	if _, err := io.WriteString(hw, binaryMagic); err != nil {
		return fmt.Errorf("mmio: writing magic: %w", err)
	}
	hdr := [3]int64{int64(a.Rows), int64(a.Cols), int64(len(a.Ent))}
	if err := binary.Write(hw, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("mmio: writing binary header: %w", err)
	}
	for _, e := range a.Ent {
		if err := binary.Write(hw, binary.LittleEndian, e); err != nil {
			return fmt.Errorf("mmio: writing binary entry: %w", err)
		}
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := bw.Write(foot[:]); err != nil {
		return fmt.Errorf("mmio: writing checksum: %w", err)
	}
	return bw.Flush()
}

// ReadBinary reads the compact binary COO representation. When the stream
// carries the CRC-32C footer it is verified (mismatch fails with
// ErrChecksum); footer-less streams written before the footer existed still
// load — the entry payload is self-delimiting, so the reader distinguishes
// the two by whether bytes follow the last entry.
func ReadBinary(r io.Reader) (*mat.COO, error) {
	crc := crc32.New(cooCastagnoli)
	br := bufio.NewReaderSize(r, 1<<20)
	hr := io.TeeReader(br, crc)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(hr, magic); err != nil {
		return nil, fmt.Errorf("mmio: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, magic)
	}
	var hdr [3]int64
	if err := binary.Read(hr, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("mmio: reading binary header: %w", err)
	}
	rows, cols, nnz := hdr[0], hdr[1], hdr[2]
	if rows < 0 || cols < 0 || nnz < 0 || rows > 1<<31 || cols > 1<<31 {
		return nil, fmt.Errorf("mmio: invalid header %v", hdr)
	}
	if nnz > rows*cols {
		return nil, fmt.Errorf("mmio: header claims %d entries for a %d×%d matrix", nnz, rows, cols)
	}
	out := &mat.COO{Rows: int(rows), Cols: int(cols)}
	// Allocate incrementally rather than trusting the header, so a
	// corrupt nnz cannot force a huge allocation before the (short)
	// stream runs out.
	const chunk = 1 << 16
	for read := int64(0); read < nnz; {
		n := nnz - read
		if n > chunk {
			n = chunk
		}
		buf := make([]mat.Entry, n)
		if err := binary.Read(hr, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("mmio: reading binary entries: %w", err)
		}
		out.Ent = append(out.Ent, buf...)
		read += n
	}
	// The footer is the checksum of everything before it, so it is read
	// past the hashing reader. Clean EOF here means a legacy footer-less
	// stream.
	want := crc.Sum32()
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		if errors.Is(err, io.EOF) {
			if err := out.Validate(); err != nil {
				return nil, err
			}
			return out, nil
		}
		return nil, fmt.Errorf("%w: truncated footer: %v", ErrChecksum, err)
	}
	if got := binary.LittleEndian.Uint32(foot[:]); got != want {
		return nil, fmt.Errorf("%w: stream %08x, computed %08x", ErrChecksum, got, want)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if errors.Is(err, io.EOF) && line != "" {
		return line, nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// nextToken reads the next whitespace-delimited token, skipping newlines.
func nextToken(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		b, err := br.ReadByte()
		if err != nil {
			if sb.Len() > 0 && errors.Is(err, io.EOF) {
				return sb.String(), nil
			}
			return "", err
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			if sb.Len() > 0 {
				return sb.String(), nil
			}
		default:
			sb.WriteByte(b)
		}
	}
}
