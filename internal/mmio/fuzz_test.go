package mmio

import (
	"bytes"
	"strings"
	"testing"

	"atmatrix/internal/mat"
)

// FuzzReadMatrixMarket checks that arbitrary input never panics the
// parser and that everything it accepts is structurally valid and
// round-trips.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n1 1 0\n")
	f.Add("")
	f.Add("%%MatrixMarket")
	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("accepted invalid matrix: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteMatrixMarket(&buf, a); werr != nil {
			t.Fatalf("cannot re-serialize accepted matrix: %v", werr)
		}
		back, rerr := ReadMatrixMarket(&buf)
		if rerr != nil {
			t.Fatalf("cannot re-read own output: %v", rerr)
		}
		if back.Rows != a.Rows || back.Cols != a.Cols {
			t.Fatal("round trip changed the shape")
		}
	})
}

// FuzzReadBinary checks the binary COO reader against arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	seed := mat.NewCOO(3, 3)
	seed.Append(0, 1, 2.5)
	seed.Append(2, 2, -1)
	if err := WriteBinary(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ATMCOO1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		a, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("accepted invalid matrix: %v", verr)
		}
	})
}
