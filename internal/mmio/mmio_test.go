package mmio

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"atmatrix/internal/mat"
)

func TestReadCoordinateGeneral(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 1.5
3 4 -2
2 2 7
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3 || a.Cols != 4 || a.NNZ() != 3 {
		t.Fatalf("shape %d×%d nnz %d", a.Rows, a.Cols, a.NNZ())
	}
	d := a.ToDense()
	if d.At(0, 0) != 1.5 || d.At(2, 3) != -2 || d.At(1, 1) != 7 {
		t.Fatalf("values wrong: %v", d.Data)
	}
}

func TestReadSymmetricExpansion(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5
3 3 1
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := a.ToDense()
	if d.At(1, 0) != 5 || d.At(0, 1) != 5 {
		t.Fatal("symmetric entry not mirrored")
	}
	if a.NNZ() != 3 { // diagonal entry not duplicated
		t.Fatalf("nnz = %d, want 3", a.NNZ())
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 4
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := a.ToDense()
	if d.At(1, 0) != 4 || d.At(0, 1) != -4 {
		t.Fatal("skew-symmetric mirror wrong")
	}
}

func TestReadPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := a.ToDense()
	if d.At(0, 1) != 1 || d.At(1, 0) != 1 {
		t.Fatal("pattern values should be 1")
	}
}

func TestReadIntegerValues(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate integer general
2 2 1
1 1 42
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.ToDense().At(0, 0) != 42 {
		t.Fatal("integer value wrong")
	}
}

func TestReadArray(t *testing.T) {
	// Array layout is column-major.
	src := `%%MatrixMarket matrix array real general
2 3
1
4
2
5
0
6
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := a.ToDense()
	want := [][]float64{{1, 2, 0}, {4, 5, 6}}
	for r := range want {
		for c := range want[r] {
			if d.At(r, c) != want[r][c] {
				t.Fatalf("array (%d,%d) = %g, want %g", r, c, d.At(r, c), want[r][c])
			}
		}
	}
	if a.NNZ() != 5 { // the zero must be dropped
		t.Fatalf("nnz = %d, want 5", a.NNZ())
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"not a header\n1 1 1\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n",
		"%%MatrixMarket tensor coordinate real general\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n1 1\n",            // short size line
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",   // row out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",     // missing value
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",   // truncated entries
		"%%MatrixMarket matrix array real symmetric\n2 2\n1\n2\n3\n4\n",   // unsupported array variant
		"%%MatrixMarket matrix coordinate real general\nx y z\n",          // bad size tokens
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n", // bad value
	}
	for i, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := mat.RandomCOO(rng, 50, 70, 400)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ToDense().EqualApprox(a.ToDense(), 0) {
		t.Fatal("MatrixMarket round trip lost data")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := mat.RandomCOO(rng, 123, 45, 999)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	// Binary size = magic + 24-byte header + 16 bytes per entry + 4-byte
	// CRC-32C footer.
	if want := len(binaryMagic) + 24 + 16*len(a.Ent) + 4; buf.Len() != want {
		t.Fatalf("binary size %d, want %d", buf.Len(), want)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != a.Rows || back.Cols != a.Cols || len(back.Ent) != len(a.Ent) {
		t.Fatal("binary round trip header mismatch")
	}
	for i := range a.Ent {
		if back.Ent[i] != a.Ent[i] {
			t.Fatal("binary round trip entry mismatch")
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := mat.RandomCOO(rng, 10, 10, 20)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-8])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	bad := append([]byte("XXXXXXX\n"), data[8:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	} else if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic error %v does not match ErrBadMagic", err)
	}
}

func TestBinaryChecksumDetectsBitflip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := mat.RandomCOO(rng, 10, 10, 20)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit in a value byte of the last entry; the coordinates stay
	// valid so only the footer can catch it.
	data[len(data)-4-1] ^= 0x10
	_, err := ReadBinary(bytes.NewReader(data))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt stream error %v does not match ErrChecksum", err)
	}
}

func TestBinaryLegacyFooterlessStreamLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := mat.RandomCOO(rng, 10, 10, 20)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	// Streams written before the footer existed end right after the last
	// entry; they must still load, just without corruption detection.
	legacy := buf.Bytes()[:buf.Len()-4]
	back, err := ReadBinary(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ent) != len(a.Ent) {
		t.Fatal("legacy stream round trip lost entries")
	}
}

func TestEmptyMatrixRoundTrips(t *testing.T) {
	a := mat.NewCOO(5, 5)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 0 || back.Rows != 5 {
		t.Fatal("empty matrix round trip failed")
	}
	buf.Reset()
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err = ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 0 || back.Cols != 5 {
		t.Fatal("empty binary round trip failed")
	}
}
