package costmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atmatrix/internal/mat"
)

func TestDefaultThresholds(t *testing.T) {
	p := Default()
	if got := p.RhoRead(); got != 0.25 {
		t.Fatalf("RhoRead = %g, want 0.25 (the paper's test-system value)", got)
	}
	if got := p.RhoWrite(); got != 0.0625 {
		t.Fatalf("RhoWrite = %g, want 0.0625", got)
	}
	if p.RhoWrite() >= p.RhoRead() {
		t.Fatal("write threshold must be much lower than read threshold (§III-C)")
	}
	// The mixed-kernel turnaround sits below ρ0^R: this gap is what makes
	// the dynamic optimizer convert near-threshold sparse tiles when the
	// other operand is dense (§IV-D, matrix R1).
	if got := p.RhoReadMixed(); got != 0.2 {
		t.Fatalf("RhoReadMixed = %g, want 0.2", got)
	}
	if p.RhoReadMixed() >= p.RhoRead() {
		t.Fatal("mixed turnaround must be below ρ0^R")
	}
}

// TestConversionZone: a sparse tile with density between RhoReadMixed and
// RhoRead multiplied by a dense operand should be converted to dense.
func TestConversionZone(t *testing.T) {
	p := Default()
	n := 512
	plan := p.ChooseKernel(mat.Sparse, mat.DenseKind, mat.DenseKind, n, n, n, 0.23, 1, 0.95)
	if !plan.ConvA {
		t.Fatalf("ρ=0.23 (conversion zone) not converted: %+v", plan)
	}
	plan = p.ChooseKernel(mat.Sparse, mat.DenseKind, mat.DenseKind, n, n, n, 0.1, 1, 0.95)
	if plan.ConvA {
		t.Fatalf("ρ=0.1 (below mixed turnaround) converted: %+v", plan)
	}
}

// TestReadTurnaround: around ρ0^R the cheaper A representation flips from
// sparse (below) to dense (above), with B and C dense.
func TestReadTurnaround(t *testing.T) {
	p := Default()
	m, k, n := 512, 512, 512
	lo := p.Mult(mat.Sparse, mat.DenseKind, mat.DenseKind, m, k, n, 0.1, 1, 1)
	loD := p.Mult(mat.DenseKind, mat.DenseKind, mat.DenseKind, m, k, n, 0.1, 1, 1)
	if lo >= loD {
		t.Fatalf("at ρ=0.1 sparse A should win: sp=%g d=%g", lo, loD)
	}
	hi := p.Mult(mat.Sparse, mat.DenseKind, mat.DenseKind, m, k, n, 0.6, 1, 1)
	hiD := p.Mult(mat.DenseKind, mat.DenseKind, mat.DenseKind, m, k, n, 0.6, 1, 1)
	if hi <= hiD {
		t.Fatalf("at ρ=0.6 dense A should win: sp=%g d=%g", hi, hiD)
	}
}

// TestWriteAsymmetry: a sparse target is much more expensive than a dense
// one at equal density once the density is above ρ0^W.
func TestWriteAsymmetry(t *testing.T) {
	p := Default()
	m, k, n := 256, 256, 256
	spC := p.Mult(mat.Sparse, mat.Sparse, mat.Sparse, m, k, n, 0.01, 0.01, 0.5)
	dC := p.Mult(mat.Sparse, mat.Sparse, mat.DenseKind, m, k, n, 0.01, 0.01, 0.5)
	if spC <= dC {
		t.Fatalf("dense target should win at ρC=0.5: spC=%g dC=%g", spC, dC)
	}
	spC = p.Mult(mat.Sparse, mat.Sparse, mat.Sparse, m, k, n, 0.001, 0.001, 0.001)
	dC = p.Mult(mat.Sparse, mat.Sparse, mat.DenseKind, m, k, n, 0.001, 0.001, 0.001)
	if spC >= dC {
		t.Fatalf("sparse target should win at ρC=0.001: spC=%g dC=%g", spC, dC)
	}
}

func TestMultMonotoneInDensity(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(500), 1+r.Intn(500), 1+r.Intn(500)
		r1, r2 := r.Float64(), r.Float64()
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		// Higher ρA cannot make a sparse-A multiplication cheaper.
		c1 := p.Mult(mat.Sparse, mat.Sparse, mat.Sparse, m, k, n, r1, 0.5, 0.5)
		c2 := p.Mult(mat.Sparse, mat.Sparse, mat.Sparse, m, k, n, r2, 0.5, 0.5)
		return c1 <= c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMultPositive(t *testing.T) {
	p := Default()
	kinds := [2]mat.Kind{mat.Sparse, mat.DenseKind}
	for _, ka := range kinds {
		for _, kb := range kinds {
			for _, kc := range kinds {
				c := p.Mult(ka, kb, kc, 100, 100, 100, 0.1, 0.1, 0.1)
				if c <= 0 {
					t.Fatalf("Mult(%v,%v,%v) = %g, want > 0", ka, kb, kc, c)
				}
			}
		}
	}
}

func TestConvert(t *testing.T) {
	p := Default()
	if p.Convert(mat.Sparse, mat.Sparse, 100, 100, 0.5) != 0 {
		t.Fatal("identity conversion should be free")
	}
	s2d := p.Convert(mat.Sparse, mat.DenseKind, 100, 100, 0.5)
	d2s := p.Convert(mat.DenseKind, mat.Sparse, 100, 100, 0.5)
	if s2d <= 0 || d2s <= 0 {
		t.Fatal("conversions must have positive cost")
	}
	if d2s <= s2d {
		t.Fatal("dense→sparse should cost more than sparse→dense at equal density (sparse write asymmetry)")
	}
}

func TestChooseKernelPrefersDenseForDenseTile(t *testing.T) {
	p := Default()
	// A sparse tile of density 0.9 multiplied with a dense B: conversion
	// to dense should pay off for a large tile.
	plan := p.ChooseKernel(mat.Sparse, mat.DenseKind, mat.DenseKind, 1024, 1024, 1024, 0.9, 1, 1)
	if !plan.ConvA || plan.KindA != mat.DenseKind {
		t.Fatalf("plan = %+v, want A converted to dense", plan)
	}
	// A hypersparse tile must stay sparse.
	plan = p.ChooseKernel(mat.Sparse, mat.DenseKind, mat.DenseKind, 1024, 1024, 1024, 0.001, 1, 1)
	if plan.ConvA {
		t.Fatalf("plan = %+v, want A kept sparse", plan)
	}
}

func TestChooseKernelNeverWorseThanNoConversion(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		kinds := [2]mat.Kind{mat.Sparse, mat.DenseKind}
		ka, kb, kc := kinds[r.Intn(2)], kinds[r.Intn(2)], kinds[r.Intn(2)]
		m, k, n := 1+r.Intn(2000), 1+r.Intn(2000), 1+r.Intn(2000)
		ra, rb, rc := r.Float64(), r.Float64(), r.Float64()
		plan := p.ChooseKernel(ka, kb, kc, m, k, n, ra, rb, rc)
		asIs := p.Mult(ka, kb, kc, m, k, n, ra, rb, rc)
		return plan.Cost <= asIs && plan.Cost > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestOuterCrossover pins the structure of the outer-product SpGEMM cost
// curve: the merge kernel is modelled cheaper exactly on the hypersparse
// side of RunsOuter, the crossover sits near one run per output row (the
// measured software crossover), and the curve is monotone in the run
// count.
func TestOuterCrossover(t *testing.T) {
	p := Default()
	x := p.RunsOuter()
	if x < 0.5 || x > 2 {
		t.Fatalf("RunsOuter = %g, want within [0.5, 2] (measured crossover ≈1 run/row)", x)
	}
	n := 4096
	// Below the crossover: ρA·k = x/2 runs per row.
	if !p.PreferOuter(n, n, n, x/2/float64(n), 0.001) {
		t.Fatal("outer not preferred below the crossover")
	}
	// Above: 4·x runs per row.
	if p.PreferOuter(n, n, n, 4*x/float64(n), 0.001) {
		t.Fatal("outer preferred above the crossover")
	}
	// Degenerate densities never select the merge kernel.
	if p.PreferOuter(n, n, n, 0, 0.5) || p.PreferOuter(n, n, n, 0.5, 0) {
		t.Fatal("outer preferred for an empty operand")
	}
	prev := 0.0
	for _, runs := range []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32} {
		c := p.OuterPerFlop(runs)
		if c < prev {
			t.Fatalf("OuterPerFlop not monotone at runs=%g", runs)
		}
		prev = c
	}
	if p.OuterPerFlop(0.5) >= p.GustavsonPerFlop() {
		t.Fatal("outer append floor should undercut the Gustavson scatter")
	}
}
