// Package costmodel implements the eightfold multiplication cost model of
// the paper (§II-C3, §III-C, based on SpMacho): one cost function per
// {sparse,dense}³ kernel combination, parameterised by the operand
// dimensions m×k·k×n and the densities ρA, ρB and the estimated result
// density ρ̂C. The model drives three decisions:
//
//  1. the read density threshold ρ0^R used by the partitioner to classify
//     tiles as sparse or dense (the density turnaround point, i.e. the
//     intersection of the sparse and dense kernel cost functions),
//  2. the write density threshold ρ0^W for result tiles (much lower,
//     because writing a sparse tile is far more expensive than reading
//     one — the read/write asymmetry of §III-C),
//  3. the dynamic optimizer's just-in-time conversion choices at tile-
//     multiplication granularity.
//
// Costs are in abstract time units (roughly nanoseconds on the reference
// machine); only ratios matter for the decisions. The constants can be
// re-fitted to a concrete machine with core.CalibrateCostModel.
package costmodel

import (
	"math"

	"atmatrix/internal/mat"
)

// Params holds the per-operation cost constants of the model.
type Params struct {
	// FlopDD is the cost of one multiply-add in a fully dense inner loop
	// (contiguous reads and writes, vectorizable).
	FlopDD float64
	// FlopSp is the cost of one multiply-add when both operands are
	// sparse (only matching non-zero pairs are touched). The ratio
	// FlopDD/FlopSp defines the read density turnaround ρ0^R.
	FlopSp float64
	// FlopMixed is the cost of one multiply-add when exactly one operand
	// is sparse: each inner-loop step pairs an indirect access with a
	// dense stream, defeating vectorization while still touching full
	// cache lines. FlopMixed > FlopSp places the mixed-kernel turnaround
	// FlopDD/FlopMixed *below* ρ0^R — which is why ATMULT's dynamic
	// optimizer converts tiles whose density lies slightly below the
	// read threshold when the other operand is dense (the R1 situation
	// of §IV-D).
	FlopMixed float64
	// ReadSp is the per-element overhead of iterating a sparse operand
	// (pointer chasing through RowPtr/ColIdx).
	ReadSp float64
	// WriteD is the per-cell cost of initializing/flushing a dense target.
	WriteD float64
	// WriteSp is the per-element cost of materializing a sparse result
	// (accumulator flush, column sort, CSR append). The ratio
	// WriteD/WriteSp defines the write density turnaround ρ0^W.
	WriteSp float64
	// ScatterSp is the extra per-flop penalty when accumulating into a
	// sparse target instead of a dense one.
	ScatterSp float64
	// ConvCell is the per-cell scan/initialization cost of a tile
	// conversion in either direction.
	ConvCell float64
	// OuterAppend is the per-flop cost of the outer-product SpGEMM's
	// fast paths (≤2 live runs per output row: scaled copy or two-pointer
	// merge, a straight sorted append with no accumulator scatter). It is
	// the floor of the outer-product cost curve.
	OuterAppend float64
	// MergeStep is the per-flop, per-tree-level cost of the outer-product
	// kernel's loser-tree merge: each emitted element pays ~log2(R)
	// replay comparisons for R partial-product runs per output row. The
	// intersection of OuterAppend + MergeStep·log2(R) with the Gustavson
	// curve FlopSp + ScatterSp defines the outer-product crossover RunsOuter
	// (≈1 stored element per A row with the default constants).
	MergeStep float64
}

// Default returns constants fitted to the relative costs observed with the
// pure-Go kernels in this repository. They yield ρ0^R = 0.25 — the value
// the paper uses for its test system — and ρ0^W = 0.0625.
func Default() Params {
	return Params{
		FlopDD:      1.0,
		FlopSp:      4.0,
		FlopMixed:   5.0,
		ReadSp:      2.0,
		WriteD:      1.0,
		WriteSp:     16.0,
		ScatterSp:   2.0,
		ConvCell:    1.0,
		OuterAppend: 5.0,
		MergeStep:   11.0,
	}
}

// RhoRead returns ρ0^R, the read density turnaround point: the operand
// density at which the dense representation starts to be more
// time-efficient than the sparse one. It is the intersection of the
// per-element costs of the sparse and dense inner loops,
// ρ·FlopSp = FlopDD, i.e. it approximates the turnaround for the
// sparse-sparse kernel; per-kernel turnarounds deviate (RhoReadMixed),
// which is exactly the gap the dynamic optimizer closes at runtime
// (§II-C3).
func (p Params) RhoRead() float64 { return p.FlopDD / p.FlopSp }

// RhoReadMixed returns the turnaround of the mixed kernels (one sparse
// operand against a dense one): FlopDD/FlopMixed, below RhoRead.
func (p Params) RhoReadMixed() float64 { return p.FlopDD / p.FlopMixed }

// RhoWrite returns ρ0^W, the write density turnaround point, the analogous
// intersection for result tiles: ρ·WriteSp = WriteD.
func (p Params) RhoWrite() float64 { return p.WriteD / p.WriteSp }

// Mult estimates the runtime of one kernel invocation computing
// C[m×n] += A[m×k]·B[k×n] with the given physical kinds and densities.
func (p Params) Mult(kindA, kindB, kindC mat.Kind, m, k, n int, rhoA, rhoB, rhoC float64) float64 {
	effA, effB := 1.0, 1.0
	var read float64
	if kindA == mat.Sparse {
		effA = rhoA
		read += float64(m) * float64(k) * rhoA * p.ReadSp
	}
	if kindB == mat.Sparse {
		effB = rhoB
		// B rows are revisited once per contributing A element; charge the
		// sparse iteration overhead per inner-loop visit instead of per
		// stored element.
	}
	flops := float64(m) * float64(k) * float64(n) * effA * effB
	perFlop := p.FlopDD
	switch {
	case kindA == mat.Sparse && kindB == mat.Sparse:
		perFlop = p.FlopSp
	case kindA == mat.Sparse || kindB == mat.Sparse:
		perFlop = p.FlopMixed
	}
	cost := flops*perFlop + read
	if kindC == mat.Sparse {
		cost += flops * p.ScatterSp
		cost += rhoC * float64(m) * float64(n) * p.WriteSp
	} else {
		cost += float64(m) * float64(n) * p.WriteD
	}
	return cost
}

// GustavsonPerFlop is the modelled per-flop cost of the row-form SpGEMM
// (SpSpSp): the sparse multiply-add plus the SPA scatter into the sparse
// target.
func (p Params) GustavsonPerFlop() float64 { return p.FlopSp + p.ScatterSp }

// OuterPerFlop is the modelled per-flop cost of the outer-product
// multiway-merge SpGEMM (OuterSpSp) when A rows select `runs` sorted
// partial-product runs on average (runs = ρA·k): the sorted append plus
// ~log2(runs) loser-tree comparisons per emitted element. At runs ≤ 1
// almost every output row takes a tree-free fast path (scaled copy or
// two-pointer merge), so only the append floor remains; above 1 the
// Poisson tail of run counts engages the tree and the log term applies.
func (p Params) OuterPerFlop(runs float64) float64 {
	c := p.OuterAppend
	if runs > 1 {
		c += p.MergeStep * math.Log2(runs)
	}
	return c
}

// RunsOuter returns the outer-product crossover in expected runs per
// output row: below it the merge kernel is modelled cheaper than
// Gustavson. It is the runs value where OuterPerFlop meets
// GustavsonPerFlop (2^((FlopSp+ScatterSp−OuterAppend)/MergeStep)).
func (p Params) RunsOuter() float64 {
	return math.Exp2((p.GustavsonPerFlop() - p.OuterAppend) / p.MergeStep)
}

// PreferOuter reports whether the outer-product merge kernel is modelled
// faster than Gustavson for a sparse×sparse→sparse tile multiplication
// C[m×n] += A[m×k]·B[k×n]. The decision depends on the expected number of
// partial-product runs per output row, ρA·k: at or below ~1 almost every
// output row is a single scaled B row (or a cheap two-run merge), and the
// kernel wins by never touching the SPA; above it the per-element
// loser-tree replay loses to the SPA scatter. Empty operands fall back to
// Gustavson (both kernels are trivially cheap there).
func (p Params) PreferOuter(m, k, n int, rhoA, rhoB float64) bool {
	if rhoA <= 0 || rhoB <= 0 {
		return false
	}
	runs := rhoA * float64(k)
	return p.OuterPerFlop(runs) < p.GustavsonPerFlop()
}

// Convert estimates the cost of converting an m×n tile of density rho from
// one representation to the other. Sparse→dense zero-fills the array and
// copies nnz elements; dense→sparse scans every cell and writes nnz sparse
// elements.
func (p Params) Convert(from, to mat.Kind, m, n int, rho float64) float64 {
	if from == to {
		return 0
	}
	cells := float64(m) * float64(n)
	nnz := cells * rho
	if to == mat.DenseKind {
		return cells*p.ConvCell + nnz*p.WriteD
	}
	return cells*p.ConvCell + nnz*p.WriteSp
}

// Plan is the outcome of a kernel selection: whether to convert the A
// and/or B operand before multiplying, and the predicted total cost
// including conversions.
type Plan struct {
	KindA, KindB mat.Kind
	ConvA, ConvB bool
	Cost         float64
}

// ChooseKernel evaluates the operand-representation alternatives
// (keep/convert A × keep/convert B) for a single tile multiplication with a
// fixed target kind, adding just-in-time conversion costs, and returns the
// cheapest plan. This is the OPTIMIZE step of Alg. 2 (line 9).
//
// Only sparse→dense upgrades are proposed: converting a dense operand to
// CSR cannot beat streaming the dense representation directly (a dense
// row is the degenerate best case of every sparse inner loop), and the
// conversions the paper observes in its evaluation (§IV-D) are all
// sparse→dense. The reverse direction remains supported by the kernels
// and by Tile.Converted for callers that want it.
func (p Params) ChooseKernel(kindA, kindB, kindC mat.Kind, m, k, n int, rhoA, rhoB, rhoC float64) Plan {
	best := Plan{Cost: -1}
	for _, ka := range alternatives(kindA) {
		for _, kb := range alternatives(kindB) {
			c := p.Mult(ka, kb, kindC, m, k, n, rhoA, rhoB, rhoC)
			if ka != kindA {
				c += p.Convert(kindA, ka, m, k, rhoA)
			}
			if kb != kindB {
				c += p.Convert(kindB, kb, k, n, rhoB)
			}
			if best.Cost < 0 || c < best.Cost {
				best = Plan{KindA: ka, KindB: kb, ConvA: ka != kindA, ConvB: kb != kindB, Cost: c}
			}
		}
	}
	return best
}

// alternatives lists the representations the optimizer may use for an
// operand stored in the given kind: dense operands stay dense; sparse
// operands may be upgraded.
func alternatives(k mat.Kind) []mat.Kind {
	if k == mat.Sparse {
		return []mat.Kind{mat.Sparse, mat.DenseKind}
	}
	return []mat.Kind{mat.DenseKind}
}
