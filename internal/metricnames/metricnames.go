// Package metricnames is the central manifest of every metric name the
// atserve /metrics endpoint may emit. It is the metrics counterpart of
// internal/faultinject/sites.go: metric names are stringly typed and cross
// package boundaries (the emitter in cmd/atserve, operator dashboards,
// smoke tests, README documentation), and nothing but convention keeps
// them aligned.
//
// The atlint metriccheck analyzer enforces the contract in both
// directions: every `atserve_*` string literal in non-test code must be
// registered here (a typo'd emission would silently break dashboards),
// and every name registered here must be emitted somewhere (a stale entry
// documents a metric that no longer exists).
//
// Workflow for adding a metric: add the name here first, then emit it in
// cmd/atserve's handleMetrics; `make lint` fails until both halves agree.
// Renames must touch both files in the same commit. Labeled series
// (`atserve_job_latency_seconds{quantile="0.5"}`) register the bare name —
// the analyzer strips everything from the first '{'.
package metricnames

// Names lists every registered metric name, grouped the way handleMetrics
// emits them. Keep it sorted within each group.
var Names = []string{
	// Job lifecycle.
	"atserve_jobs_accepted_total",
	"atserve_jobs_canceled_total",
	"atserve_jobs_completed_total",
	"atserve_jobs_failed_total",
	"atserve_jobs_inflight",
	"atserve_jobs_rejected_total",
	"atserve_queue_capacity",
	"atserve_queue_depth",
	"atserve_job_latency_seconds",

	// Resilience: retries, panics, watchdog, brownout, quarantine.
	"atserve_brownout_shed_total",
	"atserve_brownout_trips_total",
	"atserve_degraded_sockets",
	"atserve_quarantined_matrices",
	"atserve_retries_total",
	"atserve_task_panics_total",
	"atserve_verify_failed_total",
	"atserve_watchdog_timeouts_total",

	// Expression engine.
	"atserve_eval_fused_stages_total",
	"atserve_eval_jobs_total",
	"atserve_eval_plan_seconds_total",

	// Catalog: residency, spill, scrub.
	"atserve_catalog_budget_bytes",
	"atserve_catalog_evictions_total",
	"atserve_catalog_hits_total",
	"atserve_catalog_matrices",
	"atserve_catalog_misses_total",
	"atserve_catalog_recovered_total",
	"atserve_catalog_reloads_total",
	"atserve_catalog_resident_bytes",
	"atserve_catalog_spilled_matrices",
	"atserve_catalog_spills_total",
	"atserve_scrub_errors_total",
	"atserve_scrub_passes_total",
	"atserve_scrub_repairs_total",
	"atserve_scrub_scanned_total",
	"atserve_scrub_unrepaired_total",

	// Multiplication pipeline phases.
	"atserve_mult_contributions_total",
	"atserve_mult_conversions_total",
	"atserve_mult_convert_seconds_total",
	"atserve_mult_estimate_seconds_total",
	"atserve_mult_finalize_seconds_total",
	"atserve_mult_multiply_seconds_total",
	"atserve_mult_optimize_seconds_total",
	"atserve_mult_target_tiles_total",
	"atserve_mult_tasks_stolen_total",
	"atserve_mult_verify_seconds_total",
	"atserve_mult_wall_seconds_total",

	// Cluster: membership, shipping, replication, merge.
	"atserve_cluster_hedged_wins_total",
	"atserve_cluster_hedges_sent_total",
	"atserve_cluster_local_fallbacks_total",
	"atserve_cluster_local_tasks_total",
	"atserve_cluster_merge_frames_total",
	"atserve_cluster_merge_peak_bytes",
	"atserve_cluster_re_replications_total",
	"atserve_cluster_remote_multiplies_total",
	"atserve_cluster_repair_passes_total",
	"atserve_cluster_rpc_retries_total",
	"atserve_cluster_shard_crc_failures_total",
	"atserve_cluster_shard_ref_bytes_total",
	"atserve_cluster_shard_ref_hits_total",
	"atserve_cluster_shard_ship_bytes_total",
	"atserve_cluster_shard_ships_total",
	"atserve_cluster_sharded_matrices",
	"atserve_cluster_shards_total",
	"atserve_cluster_tiles_rerouted_total",
	"atserve_cluster_under_replicated_shards",
	"atserve_cluster_workers_dead",
	"atserve_cluster_workers_healthy",
	"atserve_cluster_workers_suspect",
}

// Set returns the manifest as a membership set.
func Set() map[string]bool {
	s := make(map[string]bool, len(Names))
	for _, n := range Names {
		s[n] = true
	}
	return s
}
