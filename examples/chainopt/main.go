// Chain optimization: the scenario that motivated the paper's prior work
// SpMacho [9] and, through it, the AT MATRIX cost model — the best
// multiplication order of a sparse matrix chain depends on the operand
// densities and shapes, which must be estimated and propagated through
// the intermediate results. The expression engine subsumes it: the
// planner picks the association order from the propagated density
// estimates AND decides whether the chain runs fused (here the skinny
// 16-column projection P triggers the panel strategy — the chain
// collapses right-to-left through an LLC-resident dense panel, and no
// intermediate AT MATRIX is ever built) or materialized per step.
//
// Run with:
//
//	go run ./examples/chainopt
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"atmatrix/internal/core"
	"atmatrix/internal/expr"
	"atmatrix/internal/mat"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.BAtomic = 64
	rng := rand.New(rand.NewSource(21))

	// S: 3000×3000 sparse interactions, W: 3000×3000 sparse weights,
	// P: 3000×16 skinny projection.
	s := mat.RandomCOO(rng, 3000, 3000, 150_000)
	w := mat.RandomCOO(rng, 3000, 3000, 150_000)
	p := mat.RandomCOO(rng, 3000, 16, 24_000)

	bind := map[string]*core.ATMatrix{}
	for name, src := range map[string]*mat.COO{"S": s, "W": w, "P": p} {
		am, _, err := core.Partition(src, cfg)
		if err != nil {
			log.Fatal(err)
		}
		bind[name] = am
	}
	fmt.Printf("chain: S %d×%d (ρ=%.3f%%) · W %d×%d · P %d×%d\n",
		s.Rows, s.Cols, 100*s.Density(), w.Rows, w.Cols, p.Rows, p.Cols)

	fused, plan, stats, err := expr.Eval("S*W*P", bind, cfg, expr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sum := plan.Summary()
	fmt.Printf("planner chose order %s, %s strategy (estimated cost %.3g units, planned in %v)\n",
		sum.Order, sum.Fusion, sum.EstimatedCost, time.Duration(sum.PlanTime))
	fmt.Printf("fused execution: %v, %d fused stage(s), peak intermediates %d B\n",
		stats.Wall, stats.FusedStages, stats.PeakIntermediateBytes)

	// The same plan order, but materializing (and re-partitioning) a full
	// AT MATRIX between steps — the pre-fusion execution model.
	matl, _, mstats, err := expr.Eval("S*W*P", bind, cfg, expr.Options{Materialize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized execution: %v, peak intermediates %d B\n",
		mstats.Wall, mstats.PeakIntermediateBytes)

	// And the naive left-to-right order with no optimizer at all: the huge
	// 3000×3000 intermediate S·W is built first, the SpMacho worst case.
	t0 := time.Now()
	acc := bind["S"]
	for _, name := range []string{"W", "P"} {
		next, _, err := core.Multiply(acc, bind[name], cfg)
		if err != nil {
			log.Fatal(err)
		}
		re, _, err := next.Repartition(cfg)
		if err != nil {
			log.Fatal(err)
		}
		acc = re
	}
	naiveTime := time.Since(t0)
	fmt.Printf("left-to-right execution: %v\n", naiveTime)

	if !fused.ToDense().EqualApprox(matl.ToDense(), 1e-7) {
		log.Fatal("fused and materialized disagree numerically!")
	}
	if !fused.ToDense().EqualApprox(acc.ToDense(), 1e-7) {
		log.Fatal("orders disagree numerically!")
	}
	fmt.Printf("results identical; fused vs materialized %.1fx, vs left-to-right %.1fx ✓\n",
		float64(mstats.Wall)/float64(stats.Wall), float64(naiveTime)/float64(stats.Wall))
}
