// Chain optimization: the scenario that motivated the paper's prior work
// SpMacho [9] and, through it, the AT MATRIX cost model — the best
// multiplication order of a sparse matrix chain depends on the operand
// densities and shapes, which must be estimated and propagated through
// the intermediate results. A classic instance is the PageRank-style
// three-term product Aᵀ·A·v-ish pattern, or a feature projection
// S·W·P with a huge sparse S and a skinny projection P: evaluating
// right-to-left collapses the chain into the skinny dimension first.
//
// Run with:
//
//	go run ./examples/chainopt
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"atmatrix/internal/core"
	"atmatrix/internal/mat"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.BAtomic = 64
	rng := rand.New(rand.NewSource(21))

	// S: 3000×3000 sparse interactions, W: 3000×3000 sparse weights,
	// P: 3000×16 skinny projection.
	s := mat.RandomCOO(rng, 3000, 3000, 150_000)
	w := mat.RandomCOO(rng, 3000, 3000, 150_000)
	p := mat.RandomCOO(rng, 3000, 16, 24_000)

	var chain []*core.ATMatrix
	for _, src := range []*mat.COO{s, w, p} {
		am, _, err := core.Partition(src, cfg)
		if err != nil {
			log.Fatal(err)
		}
		chain = append(chain, am)
	}
	fmt.Printf("chain: S %d×%d (ρ=%.3f%%) · W %d×%d · P %d×%d\n",
		s.Rows, s.Cols, 100*s.Density(), w.Rows, w.Cols, p.Rows, p.Cols)

	plan, err := core.OptimizeChain(chain, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer chose %s (estimated cost %.3g units)\n", plan.Expression, plan.Cost)

	t0 := time.Now()
	opt, stats, err := core.MultiplyChain(chain, cfg)
	if err != nil {
		log.Fatal(err)
	}
	optTime := time.Since(t0)
	fmt.Printf("optimized execution: %v over %d steps\n", optTime, stats.Steps)

	// Compare with the naive left-to-right order.
	t0 = time.Now()
	acc := chain[0]
	for _, m := range chain[1:] {
		next, _, err := core.Multiply(acc, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		re, _, err := next.Repartition(cfg)
		if err != nil {
			log.Fatal(err)
		}
		acc = re
	}
	naiveTime := time.Since(t0)
	fmt.Printf("left-to-right execution: %v\n", naiveTime)

	if !acc.ToDense().EqualApprox(opt.ToDense(), 1e-7) {
		log.Fatal("orders disagree numerically!")
	}
	fmt.Printf("results identical; speedup of the optimized order: %.1fx ✓\n",
		float64(naiveTime)/float64(optTime))
}
