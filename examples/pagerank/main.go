// PageRank: the classic iterated sparse matrix-vector workload, using the
// AT MATRIX tiled MatVec. Power-law web-style graphs are exactly the
// skewed RMAT topology of the paper's G-series: a few hub columns are
// orders of magnitude denser than the tail, so the adaptive tiling stores
// the hub region differently from the hypersparse remainder.
//
// Run with:
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"atmatrix/internal/core"
	"atmatrix/internal/mat"
	"atmatrix/internal/rmat"
)

const (
	nPages  = 8192
	nLinks  = 120_000
	damping = 0.85
	maxIter = 60
	epsTol  = 1e-9
)

func main() {
	// A skewed RMAT link graph (edge u→v means u links to v).
	g, err := rmat.Generate(nPages, nLinks, rmat.Params{A: 0.6, B: 0.15, C: 0.15, D: 0.1}, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link graph: %d pages, %d links\n", nPages, g.NNZ())

	// Column-stochastic transition matrix M: M[v][u] = 1/outdeg(u) for
	// each link u→v; iterate r ← d·M·r + (1−d)/n.
	outdeg := make([]float64, nPages)
	for _, e := range g.Ent {
		outdeg[e.Row]++
	}
	m := mat.NewCOO(nPages, nPages)
	for _, e := range g.Ent {
		m.Append(int(e.Col), int(e.Row), 1/outdeg[e.Row])
	}
	m.Dedup()

	cfg := core.DefaultConfig()
	cfg.BAtomic = 256
	am, pstats, err := core.Partition(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sp, d := am.TileCount()
	fmt.Printf("transition AT MATRIX: %d tiles (%d sparse, %d dense), partitioned in %v\n",
		len(am.Tiles), sp, d, pstats.Total())

	r := make([]float64, nPages)
	for i := range r {
		r[i] = 1.0 / nPages
	}
	var iters int
	for iters = 1; iters <= maxIter; iters++ {
		mr, err := am.MatVec(r, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Dangling mass (pages without outlinks) plus teleportation.
		var dangling float64
		for i := range r {
			if outdeg[i] == 0 {
				dangling += r[i]
			}
		}
		base := (1-damping)/float64(nPages) + damping*dangling/float64(nPages)
		var delta float64
		for i := range mr {
			next := damping*mr[i] + base
			delta += math.Abs(next - r[i])
			r[i] = next
		}
		if delta < epsTol {
			break
		}
	}
	fmt.Printf("converged after %d iterations (L1 delta < %g)\n", iters, epsTol)

	// Cross-check against the plain CSR MatVec.
	csr := m.ToCSR()
	check := csr.MatVec(r)
	atv, err := am.MatVec(r, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := range check {
		if math.Abs(check[i]-atv[i]) > 1e-12 {
			log.Fatal("tiled MatVec disagrees with CSR MatVec!")
		}
	}

	type ranked struct {
		page int
		rank float64
	}
	top := make([]ranked, nPages)
	var sum float64
	for i, v := range r {
		top[i] = ranked{i, v}
		sum += v
	}
	sort.Slice(top, func(a, b int) bool { return top[a].rank > top[b].rank })
	fmt.Printf("rank mass sums to %.6f (want 1.0)\n", sum)
	fmt.Println("top pages:")
	for _, t := range top[:5] {
		fmt.Printf("  page %5d  rank %.5f\n", t.page, t.rank)
	}
	fmt.Println("tiled MatVec matches plain CSR MatVec ✓")
}
