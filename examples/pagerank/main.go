// PageRank: the classic iterated sparse matrix-vector workload, driven
// through the expression engine. Each power-iteration step is the
// expression d·M·r + c·u — a scaled transition-matrix product plus the
// teleportation/dangling mass — which the planner fuses into a panel
// application (the rank vector never materializes as an intermediate
// AT MATRIX between the product and the sum). Power-law web-style graphs
// are exactly the skewed RMAT topology of the paper's G-series: a few
// hub columns are orders of magnitude denser than the tail, so the
// adaptive tiling stores the hub region differently from the hypersparse
// remainder.
//
// Run with:
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"atmatrix/internal/core"
	"atmatrix/internal/expr"
	"atmatrix/internal/mat"
	"atmatrix/internal/rmat"
)

const (
	nPages  = 8192
	nLinks  = 120_000
	damping = 0.85
	maxIter = 60
	epsTol  = 1e-9
)

func main() {
	// A skewed RMAT link graph (edge u→v means u links to v).
	g, err := rmat.Generate(nPages, nLinks, rmat.Params{A: 0.6, B: 0.15, C: 0.15, D: 0.1}, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link graph: %d pages, %d links\n", nPages, g.NNZ())

	// Column-stochastic transition matrix M: M[v][u] = 1/outdeg(u) for
	// each link u→v; iterate r ← d·M·r + (teleport + dangling mass)·u.
	outdeg := make([]float64, nPages)
	for _, e := range g.Ent {
		outdeg[e.Row]++
	}
	m := mat.NewCOO(nPages, nPages)
	for _, e := range g.Ent {
		m.Append(int(e.Col), int(e.Row), 1/outdeg[e.Row])
	}
	m.Dedup()

	cfg := core.DefaultConfig()
	cfg.BAtomic = 256
	am, pstats, err := core.Partition(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sp, d := am.TileCount()
	fmt.Printf("transition AT MATRIX: %d tiles (%d sparse, %d dense), partitioned in %v\n",
		len(am.Tiles), sp, d, pstats.Total())

	// The uniform teleport vector u = 𝟙/n, bound once; the rank vector is
	// re-bound each iteration.
	ud := mat.NewDense(nPages, 1)
	ud.Fill(1.0 / nPages)
	bind := map[string]*core.ATMatrix{
		"M": am,
		"u": core.FromDense(ud, cfg.BAtomic),
	}

	r := mat.NewDense(nPages, 1)
	r.Fill(1.0 / nPages)
	var iters int
	for iters = 1; iters <= maxIter; iters++ {
		// Dangling mass (pages without outlinks) plus teleportation, folded
		// into the scalar coefficient of u: the expression is rebuilt each
		// iteration with the freshly computed constant.
		var dangling float64
		for i := 0; i < nPages; i++ {
			if outdeg[i] == 0 {
				dangling += r.At(i, 0)
			}
		}
		c := (1 - damping) + damping*dangling
		src := fmt.Sprintf("%.17g*M*r + %.17g*u", damping, c)

		bind["r"] = core.FromDense(r, cfg.BAtomic)
		out, plan, stats, err := expr.Eval(src, bind, cfg, expr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if iters == 1 {
			s := plan.Summary()
			fmt.Printf("per-step expression %q plans as %s fusion (%d fused stage(s)/step)\n",
				s.Expression, s.Fusion, stats.FusedStages)
		}
		next := out.ToDense()
		var delta float64
		for i := 0; i < nPages; i++ {
			delta += math.Abs(next.At(i, 0) - r.At(i, 0))
		}
		r = next
		if delta < epsTol {
			break
		}
	}
	fmt.Printf("converged after %d iterations (L1 delta < %g)\n", iters, epsTol)

	// Cross-check against a plain CSR MatVec power iteration.
	csr := m.ToCSR()
	ref := make([]float64, nPages)
	for i := range ref {
		ref[i] = 1.0 / nPages
	}
	for it := 0; it < iters; it++ {
		var dangling float64
		for i := range ref {
			if outdeg[i] == 0 {
				dangling += ref[i]
			}
		}
		base := ((1 - damping) + damping*dangling) / float64(nPages)
		mr := csr.MatVec(ref)
		for i := range ref {
			ref[i] = damping*mr[i] + base
		}
	}
	for i := range ref {
		if math.Abs(ref[i]-r.At(i, 0)) > 1e-10 {
			log.Fatal("expression engine disagrees with the CSR power iteration!")
		}
	}

	type ranked struct {
		page int
		rank float64
	}
	top := make([]ranked, nPages)
	var sum float64
	for i := range top {
		v := r.At(i, 0)
		top[i] = ranked{i, v}
		sum += v
	}
	sort.Slice(top, func(a, b int) bool { return top[a].rank > top[b].rank })
	fmt.Printf("rank mass sums to %.6f (want 1.0)\n", sum)
	fmt.Println("top pages:")
	for _, t := range top[:5] {
		fmt.Printf("  page %5d  rank %.5f\n", t.page, t.rank)
	}
	fmt.Println("fused expression iteration matches plain CSR power iteration ✓")
}
