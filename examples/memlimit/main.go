// Memory-resource flexibility: the §III-E scenario. In a resource-managed
// system (a DBMS with service-level agreements) the result of a
// multiplication may not exceed a memory budget. ATMULT's water-level
// method raises the write density threshold just enough to meet the
// budget, trading some write performance for memory — this example sweeps
// the budget and shows the trade-off on the TSOPF-like R3 topology.
//
// Run with:
//
//	go run ./examples/memlimit
package main

import (
	"fmt"
	"log"
	"time"

	"atmatrix/internal/core"
	"atmatrix/internal/gen"
)

func main() {
	spec, err := gen.Lookup("R3")
	if err != nil {
		log.Fatal(err)
	}
	a, err := spec.Generate(1.0 / 32) // 1191×1191, ~31k non-zeros
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.BAtomic = 32
	am, _, err := core.Partition(a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A: %d×%d, ρ = %.2f%%, %d tiles\n", a.Rows, a.Cols, 100*a.Density(), len(am.Tiles))

	// Unlimited run establishes the cost-optimal footprint.
	unlimited, stats, err := core.Multiply(am, am, cfg)
	if err != nil {
		log.Fatal(err)
	}
	full := unlimited.Bytes()
	csrFloor := unlimited.NNZ() * 16 // the pure-CSR footprint of the result
	fmt.Printf("unlimited: result %s in %v (write threshold ρ_D^W = %.4f)\n",
		sz(full), stats.WallTime, stats.WriteThreshold)
	fmt.Printf("pure-CSR footprint of the same result: %s — the approximate floor\n\n", sz(csrFloor))

	fmt.Println("memory budget sweep (water-level method):")
	fmt.Printf("%-10s  %-12s  %-10s  %-10s  %s\n", "budget", "threshold", "result", "time", "within budget")
	for _, frac := range []float64{1.0, 0.75, 0.5, 0.25} {
		lim := cfg
		lim.MemLimit = int64(frac * float64(full))
		t0 := time.Now()
		c, st, err := core.Multiply(am, am, lim)
		if err != nil {
			log.Fatal(err)
		}
		ok := "yes"
		if c.Bytes() > lim.MemLimit {
			ok = "no — budget below the achievable floor; memory minimized instead (§III-E)"
		}
		fmt.Printf("%-10s  %-12.4f  %-10s  %-10v  %s\n",
			sz(lim.MemLimit), st.WriteThreshold, sz(c.Bytes()), time.Since(t0).Round(time.Millisecond), ok)
		// The numbers must not change, only the physical layout.
		if !c.ToDense().EqualApprox(unlimited.ToDense(), 1e-9) {
			log.Fatal("memory limit changed the numerical result!")
		}
	}
	fmt.Println("\nnumerical results identical across all budgets ✓")
}

func sz(b int64) string {
	switch {
	case b < 1<<20:
		return fmt.Sprintf("%.0fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	}
}
