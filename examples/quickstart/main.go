// Quickstart: build a heterogeneous sparse matrix, partition it into an
// adaptive tile matrix (AT MATRIX), inspect the layout, and multiply it
// with ATMULT — verifying the result against a naive reference.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"atmatrix/internal/core"
	"atmatrix/internal/mat"
)

func main() {
	// A 512×512 matrix with a dense 96×96 cluster (e.g. a tightly
	// coupled subsystem) over a sparse background — the heterogeneous
	// topology AT MATRIX is designed for.
	rng := rand.New(rand.NewSource(42))
	n := 512
	a := mat.NewCOO(n, n)
	for r := 0; r < 96; r++ {
		for c := 0; c < 96; c++ {
			a.Append(r, c, rng.Float64())
		}
	}
	for i := 0; i < 4000; i++ {
		a.Append(rng.Intn(n), rng.Intn(n), rng.Float64())
	}
	a.Dedup()
	fmt.Printf("input: %d×%d, %d non-zeros (ρ = %.3f%%)\n", a.Rows, a.Cols, a.NNZ(), 100*a.Density())

	// Configure for this machine; shrink the atomic block so the small
	// example still shows an interesting tiling.
	cfg := core.DefaultConfig()
	cfg.BAtomic = 32

	// Partition: Z-order sort → ZBlockCnts → recursive quadtree.
	am, pstats, err := core.Partition(a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sp, d := am.TileCount()
	fmt.Printf("partitioned into %d tiles (%d sparse, %d dense) in %v\n",
		len(am.Tiles), sp, d, pstats.Total())
	fmt.Printf("memory: AT MATRIX %d bytes vs CSR %d bytes vs dense %d bytes\n",
		am.Bytes(), mat.SparseBytes(a.NNZ()), mat.DenseBytes(n, n))
	fmt.Printf("\ntile layout ('#' dense, shades sparse):\n%s\n", am.LayoutString())

	// Multiply: C = A·A with density estimation, water-level write
	// threshold, and dynamic kernel selection.
	c, stats, err := core.Multiply(am, am, cfg)
	if err != nil {
		log.Fatal(err)
	}
	csp, cd := c.TileCount()
	fmt.Printf("C = A·A: %d non-zeros in %d tiles (%d sparse, %d dense)\n", c.NNZ(), len(c.Tiles), csp, cd)
	fmt.Printf("ATMULT: wall %v — estimate %.2f%%, optimize+convert %.2f%%, %d conversions\n",
		stats.WallTime, 100*stats.EstimateShare(), 100*stats.OptimizeShare(), stats.Conversions)
	fmt.Printf("NUMA (simulated): %s\n", stats.Numa)

	// Verify against the naive triple loop.
	want := mat.MulReference(a.ToDense(), a.ToDense())
	if !c.ToDense().EqualApprox(want, 1e-9) {
		log.Fatal("ATMULT result does not match the reference!")
	}
	fmt.Println("verified: ATMULT matches the naive reference multiplication ✓")
}
