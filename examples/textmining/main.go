// Text mining: the similarity-query scenario from the paper's
// introduction. A term-document matrix A holds the frequency of term j in
// document i; multiplying it with its transpose yields the document
// cosine-similarity matrix D = A·Aᵀ. Term frequencies follow a Zipf
// distribution, and documents come from a few topics, so A has dense
// column stripes for stop-word-like terms and clustered topic vocabulary —
// exactly the heterogeneous topology AT MATRIX exploits.
//
// Run with:
//
//	go run ./examples/textmining
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"atmatrix/internal/core"
	"atmatrix/internal/mat"
)

const (
	nDocs   = 1200
	nTerms  = 2400
	nTopics = 6
)

func main() {
	rng := rand.New(rand.NewSource(7))
	a, docTopics := termDocumentMatrix(rng)
	fmt.Printf("term-document matrix: %d docs × %d terms, %d entries (ρ = %.3f%%)\n",
		a.Rows, a.Cols, a.NNZ(), 100*a.Density())

	cfg := core.DefaultConfig()
	cfg.BAtomic = 64

	am, _, err := core.Partition(a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	at, _, err := core.Partition(a.Transpose(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	sp, d := am.TileCount()
	fmt.Printf("A partitioned into %d tiles (%d sparse, %d dense)\n", len(am.Tiles), sp, d)

	// D = A·Aᵀ via ATMULT.
	dm, stats, err := core.Multiply(am, at, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("similarity matrix D = A·Aᵀ: %d non-zeros in %v (%.2f%% optimization)\n",
		dm.NNZ(), stats.WallTime, 100*stats.OptimizeShare())

	// Cosine-normalize with the diagonal and report the most similar
	// distinct document pairs.
	norms := make([]float64, nDocs)
	for i := 0; i < nDocs; i++ {
		norms[i] = math.Sqrt(dm.At(i, i))
	}
	type pair struct {
		i, j int
		cos  float64
	}
	var best []pair
	sampled := dm.ToCOO()
	for _, e := range sampled.Ent {
		i, j := int(e.Row), int(e.Col)
		if i >= j || norms[i] == 0 || norms[j] == 0 {
			continue
		}
		best = append(best, pair{i, j, e.Val / (norms[i] * norms[j])})
	}
	sort.Slice(best, func(x, y int) bool { return best[x].cos > best[y].cos })
	fmt.Println("\nmost similar document pairs (cosine):")
	same, shown := 0, 0
	for _, p := range best {
		if shown >= 8 {
			break
		}
		fmt.Printf("  doc %4d ~ doc %4d  cos=%.3f  topics %d/%d\n", p.i, p.j, p.cos, docTopics[p.i], docTopics[p.j])
		if docTopics[p.i] == docTopics[p.j] {
			same++
		}
		shown++
	}
	fmt.Printf("%d of %d top pairs share a topic — the similarity query works.\n", same, shown)
}

// termDocumentMatrix builds a Zipf-weighted topic-clustered term-document
// matrix and returns it with each document's topic.
func termDocumentMatrix(rng *rand.Rand) (*mat.COO, []int) {
	a := mat.NewCOO(nDocs, nTerms)
	topics := make([]int, nDocs)
	stopWords := nTerms / 50 // the most common terms appear everywhere
	topicSize := nTerms / nTopics
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(topicSize-1))
	for d := 0; d < nDocs; d++ {
		t := d * nTopics / nDocs // documents sorted by topic
		topics[d] = t
		// Stop words.
		for s := 0; s < stopWords; s++ {
			if rng.Float64() < 0.7 {
				a.Append(d, s, 1+float64(rng.Intn(5)))
			}
		}
		// Topic vocabulary, Zipf-distributed.
		for w := 0; w < 60; w++ {
			term := stopWords + t*topicSize + int(zipf.Uint64())
			if term < nTerms {
				a.Append(d, term, 1+float64(rng.Intn(3)))
			}
		}
	}
	a.Dedup()
	return a, topics
}
