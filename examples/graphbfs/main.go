// Graph algorithms in the language of linear algebra: multi-source
// breadth-first search (Kepner & Gilbert), the scenario cited in the
// paper's introduction. With a boolean adjacency matrix A, one BFS
// expansion of a frontier matrix F (one row per source) is the sparse
// multiplication F' = F·A; masking out visited vertices gives the next
// frontier. Because frontiers start hypersparse and can densify toward
// the middle of the search, the adaptive representation and the dynamic
// kernel selection of ATMULT fit naturally.
//
// Run with:
//
//	go run ./examples/graphbfs
package main

import (
	"fmt"
	"log"

	"atmatrix/internal/core"
	"atmatrix/internal/mat"
	"atmatrix/internal/rmat"
)

const (
	nVertices = 4096
	nEdges    = 60_000
	nSources  = 32
	maxLevels = 12
)

func main() {
	// An RMAT power-law graph (the paper's generator for G1–G9).
	adj, err := rmat.Generate(nVertices, nEdges, rmat.Params{A: 0.55, B: 0.15, C: 0.15, D: 0.15}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i := range adj.Ent {
		adj.Ent[i].Val = 1 // boolean semiring via values ≥ 1
	}
	fmt.Printf("graph: %d vertices, %d edges (RMAT a=0.55)\n", nVertices, adj.NNZ())

	cfg := core.DefaultConfig()
	cfg.BAtomic = 256
	adjAT, _, err := core.Partition(adj, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sp, d := adjAT.TileCount()
	fmt.Printf("adjacency AT MATRIX: %d tiles (%d sparse, %d dense)\n", len(adjAT.Tiles), sp, d)

	// Frontier: rows = sources, spread across the vertex range.
	frontier := mat.NewCOO(nSources, nVertices)
	visited := make([]map[int]bool, nSources)
	level := make([][]int, nSources) // discovery level per source (sampled)
	for s := 0; s < nSources; s++ {
		v := s * nVertices / nSources
		frontier.Append(s, v, 1)
		visited[s] = map[int]bool{v: true}
		level[s] = make([]int, 0)
	}

	reached := nSources
	for lvl := 1; lvl <= maxLevels; lvl++ {
		fAT, _, err := core.Partition(frontier, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if fAT.NNZ() == 0 {
			fmt.Printf("all frontiers empty after %d levels\n", lvl-1)
			break
		}
		next, _, err := core.Multiply(fAT, adjAT, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Mask: keep only newly discovered vertices per source.
		nf := mat.NewCOO(nSources, nVertices)
		discovered := 0
		for _, e := range next.ToCOO().Ent {
			s, v := int(e.Row), int(e.Col)
			if visited[s][v] {
				continue
			}
			visited[s][v] = true
			nf.Append(s, v, 1)
			discovered++
		}
		reached += discovered
		fmt.Printf("level %2d: frontier %6d vertices, total reached %6d\n", lvl, discovered, reached)
		if discovered == 0 {
			break
		}
		frontier = nf
	}

	// Report per-source coverage.
	min, max := nVertices+1, -1
	for s := 0; s < nSources; s++ {
		if len(visited[s]) < min {
			min = len(visited[s])
		}
		if len(visited[s]) > max {
			max = len(visited[s])
		}
	}
	fmt.Printf("per-source reachability: min %d, max %d of %d vertices\n", min, max, nVertices)
	fmt.Println("multi-source BFS via repeated SpGEMM complete ✓")
}
