// Gene clustering: the non-negative matrix factorization scenario from the
// paper's introduction (Liu et al., regularized NMF for gene expression).
// The core computation is the iterative multiplication of the large sparse
// gene-expression matrix V with dense factor matrices: the multiplicative
// update rules need V·Hᵀ and Vᵀ·W every iteration, which this example runs
// through ATMULT (sparse AT MATRIX × plain dense operand — the Fig. 9
// workload).
//
//	W ← W ∘ (V·Hᵀ) ⁄ (W·H·Hᵀ)
//	H ← H ∘ (Wᵀ·V) ⁄ (Wᵀ·W·H)
//
// Run with:
//
//	go run ./examples/geneclustering
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"atmatrix/internal/core"
	"atmatrix/internal/gen"
	"atmatrix/internal/mat"
)

const (
	rank  = 8
	iters = 12
	eps   = 1e-9
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A gene-expression stand-in (the R2/R4 topology class) at small
	// scale: genes × samples, non-negative.
	v, err := gen.Generate(gen.GeneExpr, 1500, 90_000, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i := range v.Ent {
		if v.Ent[i].Val < 0 {
			v.Ent[i].Val = -v.Ent[i].Val
		}
	}
	nGenes, nSamples := v.Rows, v.Cols
	fmt.Printf("expression matrix V: %d genes × %d samples, %d entries (ρ = %.2f%%)\n",
		nGenes, nSamples, v.NNZ(), 100*v.Density())

	cfg := core.DefaultConfig()
	cfg.BAtomic = 64
	vAT, _, err := core.Partition(v, cfg)
	if err != nil {
		log.Fatal(err)
	}
	vtAT, _, err := core.Partition(v.Transpose(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Random non-negative initialization.
	w := mat.RandomDense(rng, nGenes, rank)
	h := mat.RandomDense(rng, rank, nSamples)
	for i := range w.Data {
		w.Data[i] = rng.Float64() + 0.01
	}
	for i := range h.Data {
		h.Data[i] = rng.Float64() + 0.01
	}

	vd := v.ToDense() // small enough here to track the true error
	prev := 0.0
	monotone := true
	for it := 1; it <= iters; it++ {
		// W update (uses the current H): numerator V·Hᵀ through ATMULT
		// (sparse×dense, the Fig. 9 workload), denominator W·(H·Hᵀ) with
		// the small dense kernels.
		vht, _, err := core.Multiply(vAT, core.FromDense(h.Transpose(), cfg.BAtomic), cfg)
		if err != nil {
			log.Fatal(err)
		}
		hht, err := core.MulDDD(h, h.Transpose(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		whht, err := core.MulDDD(w, hht, cfg)
		if err != nil {
			log.Fatal(err)
		}
		vhtD := vht.ToDense()
		for i := range w.Data {
			w.Data[i] *= vhtD.Data[i] / (whht.Data[i] + eps)
		}

		// H update (alternating: uses the freshly updated W).
		wtv, _, err := core.Multiply(vtAT, core.FromDense(w, cfg.BAtomic), cfg)
		if err != nil {
			log.Fatal(err)
		}
		wtw, err := core.MulDDD(w.Transpose(), w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		wtwh, err := core.MulDDD(wtw, h, cfg)
		if err != nil {
			log.Fatal(err)
		}
		wtvD := wtv.ToDense().Transpose() // (Vᵀ·W)ᵀ = Wᵀ·V
		for r := 0; r < rank; r++ {
			hr := h.RowSlice(r)
			nr := wtvD.RowSlice(r)
			dr := wtwh.RowSlice(r)
			for c := range hr {
				hr[c] *= nr[c] / (dr[c] + eps)
			}
		}
		errNow := frobenius(vd, w, h)
		marker := ""
		if it > 1 && errNow > prev+1e-6 {
			marker = "  (!)"
			monotone = false
		}
		fmt.Printf("iter %2d: ‖V − W·H‖ = %.4f%s\n", it, errNow, marker)
		prev = errNow
	}
	if monotone {
		fmt.Println("NMF converged monotonically via ATMULT-powered updates ✓")
	} else {
		fmt.Println("warning: the error increased in some iteration — check the update order")
	}
}

// frobenius returns ‖V − W·H‖_F.
func frobenius(v *mat.Dense, w, h *mat.Dense) float64 {
	wh := mat.MulReference(w, h)
	var s float64
	for r := 0; r < v.Rows; r++ {
		vr, wr := v.RowSlice(r), wh.RowSlice(r)
		for c := range vr {
			d := vr[c] - wr[c]
			s += d * d
		}
	}
	return math.Sqrt(s)
}
