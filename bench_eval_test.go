package atmatrix

// Expression-engine benchmarks: the fused executor against the
// materialize-every-stage baseline on the two workloads the engine was
// built for — an association-optimized 3-term sparse chain and the
// pow(A,k)·x power iteration. `make bench-eval` serializes these to
// BENCH_eval.json; the acceptance bar is fused winning both wall time
// and peak intermediate bytes. The peak is surfaced as a custom
// peakB/op metric so benchjson can record it next to ns/op.

import (
	"math/rand"
	"testing"

	"atmatrix/internal/core"
	"atmatrix/internal/expr"
	"atmatrix/internal/mat"
	"atmatrix/internal/rmat"
)

// evalFixture builds the shared operand set for one benchmark size:
// three n×n R-MAT matrices and an n×8 dense panel for the power
// iteration.
func evalFixture(b *testing.B, n, nnz int) (map[string]*core.ATMatrix, core.Config) {
	b.Helper()
	cfg := fixtureCfg
	bind := map[string]*core.ATMatrix{}
	params, err := rmat.PaperParams(1)
	if err != nil {
		params = rmat.Uniform()
	}
	for i, name := range []string{"A", "B", "C"} {
		coo, err := rmat.Generate(n, nnz, params, int64(40+i))
		if err != nil {
			b.Fatal(err)
		}
		m, _, err := core.Partition(coo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		bind[name] = m
	}
	rng := rand.New(rand.NewSource(7))
	bind["x"] = core.FromDense(mat.RandomDense(rng, n, 8), cfg.BAtomic)
	return bind, cfg
}

// runEval executes src once per iteration and reports the executor's
// intermediate high-water mark alongside the timing.
func runEval(b *testing.B, src string, bind map[string]*core.ATMatrix, cfg core.Config, opts expr.Options) {
	b.Helper()
	var peak int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, stats, err := expr.Eval(src, bind, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if stats.PeakIntermediateBytes > peak {
			peak = stats.PeakIntermediateBytes
		}
	}
	b.ReportMetric(float64(peak), "peakB/op")
}

// BenchmarkEval_Chain3: A*B*C over square sparse operands. Fused runs
// the planner's row-stream strategy (chained Gustavson per tile-row,
// intermediates never leave the SPA); materialized builds and
// repartitions a full AT MATRIX between steps.
func BenchmarkEval_Chain3(b *testing.B) {
	// Average degree 2: the road-network-sparse regime where intermediate
	// materialization (partition + COO staging + repartition) dominates
	// the flops and row-streaming pays off. Denser chains flip toward the
	// materialized tile kernels, which is exactly what the planner's
	// cost gate decides per expression.
	bind, cfg := evalFixture(b, 4096, 4096*2)
	b.Run("fused", func(b *testing.B) {
		runEval(b, "A*B*C", bind, cfg, expr.Options{})
	})
	b.Run("materialized", func(b *testing.B) {
		runEval(b, "A*B*C", bind, cfg, expr.Options{Materialize: true})
	})
}

// BenchmarkEval_PowVec: pow(A,10)*x, the power-iteration shape. Fused
// applies A ten times to a double-buffered n×8 panel; materialized
// computes the (rapidly densifying) matrix power first and multiplies
// the panel once at the end.
func BenchmarkEval_PowVec(b *testing.B) {
	bind, cfg := evalFixture(b, 512, 512*8)
	b.Run("fused", func(b *testing.B) {
		runEval(b, "pow(A,10)*x", bind, cfg, expr.Options{})
	})
	b.Run("materialized", func(b *testing.B) {
		runEval(b, "pow(A,10)*x", bind, cfg, expr.Options{Materialize: true})
	})
}
