module atmatrix

go 1.22
