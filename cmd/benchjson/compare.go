package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// compare reads two benchjson result files and reports per-benchmark
// deltas: ns/op and every extra metric are held to the tolerance
// percentage, allocs/op to exact equality (the hot-path kernels pin zero
// allocations, so any increase is a regression no matter how small).
// Benchmarks present on only one side are reported but are not
// regressions — the suite grows over time and baselines lag.
//
// Returns 0 when nothing regressed, 1 on regression, 2 on I/O or decode
// errors. CI runs this as a non-blocking report step: single-iteration
// smoke timings are noisy, so the exit code informs rather than gates.
func compare(baselinePath, currentPath string, tolerancePct float64, stdout, stderr io.Writer) int {
	baseline, err := readResults(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	current, err := readResults(currentPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}

	base := make(map[string]result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	cur := make(map[string]result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(stdout, "MISSING  %s (in baseline, not in current run)\n", name)
			continue
		}
		regressions += compareOne(stdout, name, b, c, tolerancePct)
	}
	for _, r := range current {
		if _, ok := base[r.Name]; !ok {
			fmt.Fprintf(stdout, "NEW      %s (no baseline yet)\n", r.Name)
		}
	}

	if regressions > 0 {
		fmt.Fprintf(stdout, "benchjson: %d regression(s) beyond %.0f%% tolerance vs %s\n",
			regressions, tolerancePct, baselinePath)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: no regressions beyond %.0f%% tolerance vs %s (%d benchmarks compared)\n",
		tolerancePct, baselinePath, len(names))
	return 0
}

// compareOne reports one benchmark's deltas and returns the number of
// regressions found in it.
func compareOne(w io.Writer, name string, b, c result, tolerancePct float64) int {
	regressions := 0
	if bad, delta := beyond(b.NsPerOp, c.NsPerOp, tolerancePct); bad {
		fmt.Fprintf(w, "REGRESS  %s ns/op %.0f -> %.0f (%+.1f%%)\n", name, b.NsPerOp, c.NsPerOp, delta)
		regressions++
	} else if delta < -tolerancePct {
		fmt.Fprintf(w, "IMPROVE  %s ns/op %.0f -> %.0f (%+.1f%%)\n", name, b.NsPerOp, c.NsPerOp, delta)
	}
	// allocs/op is exact: -1 means not measured on that side, skip.
	if b.AllocsPerOp >= 0 && c.AllocsPerOp >= 0 && c.AllocsPerOp > b.AllocsPerOp {
		fmt.Fprintf(w, "REGRESS  %s allocs/op %d -> %d\n", name, b.AllocsPerOp, c.AllocsPerOp)
		regressions++
	}
	// Extra metrics (peakB/op, mergePeakB/op, ...) get the same tolerance
	// as ns/op; keys only on one side are skipped.
	keys := make([]string, 0, len(b.Extra))
	for k := range b.Extra {
		if _, ok := c.Extra[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if bad, delta := beyond(b.Extra[k], c.Extra[k], tolerancePct); bad {
			fmt.Fprintf(w, "REGRESS  %s %s %.0f -> %.0f (%+.1f%%)\n", name, k, b.Extra[k], c.Extra[k], delta)
			regressions++
		}
	}
	return regressions
}

// beyond reports whether cur exceeds base by more than tolerancePct, and
// the percentage delta. A zero or negative baseline never regresses — the
// ratio is meaningless.
func beyond(base, cur, tolerancePct float64) (bool, float64) {
	if base <= 0 {
		return false, 0
	}
	delta := (cur - base) / base * 100
	return delta > tolerancePct, delta
}

func readResults(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return rs, nil
}
