package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[
		{"name":"BenchmarkA","iterations":10,"nsPerOp":1000,"bytesPerOp":0,"allocsPerOp":0},
		{"name":"BenchmarkB","iterations":10,"nsPerOp":2000,"bytesPerOp":0,"allocsPerOp":0,"extra":{"peakB/op":500}},
		{"name":"BenchmarkGone","iterations":10,"nsPerOp":100,"bytesPerOp":-1,"allocsPerOp":-1}
	]`)

	t.Run("clean within tolerance", func(t *testing.T) {
		cur := writeJSON(t, dir, "clean.json", `[
			{"name":"BenchmarkA","iterations":10,"nsPerOp":1100,"bytesPerOp":0,"allocsPerOp":0},
			{"name":"BenchmarkB","iterations":10,"nsPerOp":1900,"bytesPerOp":0,"allocsPerOp":0,"extra":{"peakB/op":510}},
			{"name":"BenchmarkGone","iterations":10,"nsPerOp":100,"bytesPerOp":-1,"allocsPerOp":-1},
			{"name":"BenchmarkNew","iterations":10,"nsPerOp":50,"bytesPerOp":-1,"allocsPerOp":-1}
		]`)
		var out, errb bytes.Buffer
		if got := compare(base, cur, 25, &out, &errb); got != 0 {
			t.Fatalf("exit = %d, want 0\n%s%s", got, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "NEW      BenchmarkNew") {
			t.Errorf("missing NEW line:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "no regressions") {
			t.Errorf("missing summary:\n%s", out.String())
		}
	})

	t.Run("ns/op regression beyond tolerance", func(t *testing.T) {
		cur := writeJSON(t, dir, "slow.json", `[
			{"name":"BenchmarkA","iterations":10,"nsPerOp":1500,"bytesPerOp":0,"allocsPerOp":0},
			{"name":"BenchmarkB","iterations":10,"nsPerOp":2000,"bytesPerOp":0,"allocsPerOp":0,"extra":{"peakB/op":500}},
			{"name":"BenchmarkGone","iterations":10,"nsPerOp":100,"bytesPerOp":-1,"allocsPerOp":-1}
		]`)
		var out, errb bytes.Buffer
		if got := compare(base, cur, 25, &out, &errb); got != 1 {
			t.Fatalf("exit = %d, want 1\n%s", got, out.String())
		}
		if !strings.Contains(out.String(), "REGRESS  BenchmarkA ns/op 1000 -> 1500 (+50.0%)") {
			t.Errorf("missing REGRESS line:\n%s", out.String())
		}
	})

	t.Run("alloc regression is exact", func(t *testing.T) {
		cur := writeJSON(t, dir, "alloc.json", `[
			{"name":"BenchmarkA","iterations":10,"nsPerOp":1000,"bytesPerOp":16,"allocsPerOp":1},
			{"name":"BenchmarkB","iterations":10,"nsPerOp":2000,"bytesPerOp":0,"allocsPerOp":0,"extra":{"peakB/op":500}},
			{"name":"BenchmarkGone","iterations":10,"nsPerOp":100,"bytesPerOp":-1,"allocsPerOp":-1}
		]`)
		var out, errb bytes.Buffer
		if got := compare(base, cur, 25, &out, &errb); got != 1 {
			t.Fatalf("exit = %d, want 1\n%s", got, out.String())
		}
		if !strings.Contains(out.String(), "REGRESS  BenchmarkA allocs/op 0 -> 1") {
			t.Errorf("missing alloc REGRESS line:\n%s", out.String())
		}
	})

	t.Run("extra metric regression", func(t *testing.T) {
		cur := writeJSON(t, dir, "peak.json", `[
			{"name":"BenchmarkA","iterations":10,"nsPerOp":1000,"bytesPerOp":0,"allocsPerOp":0},
			{"name":"BenchmarkB","iterations":10,"nsPerOp":2000,"bytesPerOp":0,"allocsPerOp":0,"extra":{"peakB/op":900}},
			{"name":"BenchmarkGone","iterations":10,"nsPerOp":100,"bytesPerOp":-1,"allocsPerOp":-1}
		]`)
		var out, errb bytes.Buffer
		if got := compare(base, cur, 25, &out, &errb); got != 1 {
			t.Fatalf("exit = %d, want 1\n%s", got, out.String())
		}
		if !strings.Contains(out.String(), "REGRESS  BenchmarkB peakB/op 500 -> 900") {
			t.Errorf("missing peakB/op REGRESS line:\n%s", out.String())
		}
	})

	t.Run("missing benchmark is reported but not a regression", func(t *testing.T) {
		cur := writeJSON(t, dir, "short.json", `[
			{"name":"BenchmarkA","iterations":10,"nsPerOp":1000,"bytesPerOp":0,"allocsPerOp":0},
			{"name":"BenchmarkB","iterations":10,"nsPerOp":2000,"bytesPerOp":0,"allocsPerOp":0,"extra":{"peakB/op":500}}
		]`)
		var out, errb bytes.Buffer
		if got := compare(base, cur, 25, &out, &errb); got != 0 {
			t.Fatalf("exit = %d, want 0\n%s", got, out.String())
		}
		if !strings.Contains(out.String(), "MISSING  BenchmarkGone") {
			t.Errorf("missing MISSING line:\n%s", out.String())
		}
	})

	t.Run("unreadable file", func(t *testing.T) {
		var out, errb bytes.Buffer
		if got := compare(base, filepath.Join(dir, "nope.json"), 25, &out, &errb); got != 2 {
			t.Fatalf("exit = %d, want 2", got)
		}
	})
}

func TestCompareCommittedBaselines(t *testing.T) {
	// The committed baselines must stay decodable: comparing a baseline
	// against itself is the identity run and must be clean.
	for _, name := range []string{"BENCH_kernels.json", "BENCH_eval.json"} {
		path := filepath.Join("..", "..", "bench", "baselines", name)
		var out, errb bytes.Buffer
		if got := compare(path, path, 25, &out, &errb); got != 0 {
			t.Errorf("self-compare of %s = %d, want 0\n%s%s", name, got, out.String(), errb.String())
		}
	}
}
