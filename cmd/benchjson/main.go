// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout (or -o file): one record per benchmark with
// name, ns/op, B/op and allocs/op. It is the serializer behind
// `make bench-kernels`, which writes BENCH_kernels.json — the repo's
// per-kernel perf trajectory — and the CI bench-smoke artifact.
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored, so the raw `go test` stream can be piped through unfiltered.
// Runs without -benchmem produce records with bytesPerOp/allocsPerOp of
// -1 (unknown), distinguishing "not measured" from a true zero.
//
// With -compare the command switches to regression-gate mode:
//
//	benchjson -compare bench/baselines/BENCH_kernels.json [-tolerance 25] BENCH_kernels.json
//
// Both files are benchjson JSON arrays; the positional argument is the
// current run. ns/op and every extra metric (peakB/op, ...) are held to
// the tolerance percentage against the baseline, allocs/op to exact
// equality. Exit 0 when nothing regressed, 1 on regression, 2 on error —
// CI runs it non-blocking because single-iteration smoke timings are
// noisy, but the report lands in the job log either way.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line. With -benchtime=1x the ns/op column is a
// single-iteration sample, which is exactly what the CI smoke run wants.
// Custom b.ReportMetric units (e.g. the eval benches' peakB/op) land in
// Extra keyed by their unit string.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp"`
	AllocsPerOp int64              `json:"allocsPerOp"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("compare", "", "baseline JSON file: compare the current-run JSON (positional arg) against it and report regressions")
	tolerance := flag.Float64("tolerance", 25, "regression tolerance in percent for ns/op and extra metrics (with -compare)")
	flag.Parse()

	if *baseline != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly one positional argument: the current-run JSON file")
			os.Exit(2)
		}
		os.Exit(compare(*baseline, flag.Arg(0), *tolerance, os.Stdout, os.Stderr))
	}

	results := []result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the stream so the caller still sees the ordinary output.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkKernel_DDD/dense-4   212  5678901 ns/op  0 B/op  0 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: trimProcSuffix(fields[0]), Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if strings.HasSuffix(unit, "/op") {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
	}
	return r, seen
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> go test appends to
// benchmark names, so records stay comparable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
