// Command atlint runs the repo-specific static-analysis suite
// (internal/lint) over the module: allocation-free hot paths, lock
// discipline, context threading, fault-site registration, error wrapping
// and 64-bit atomic alignment. It exits non-zero when any diagnostic
// survives suppression, so it gates make lint / make check / CI.
//
// Usage:
//
//	atlint [-json] [-C dir] [packages...]
//
// Packages default to ./... relative to -C (default: the current
// directory, which must lie inside the module). -json emits a
// machine-readable report (one array of {file,line,col,analyzer,message})
// on stdout for CI artifact upload; the human format matches go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"atmatrix/internal/faultinject"
	"atmatrix/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	dir := flag.String("C", ".", "module directory to analyze from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: atlint [-json] [-C dir] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Packages()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// The manifest the faultsite analyzer validates against is the one
	// compiled into this binary — atlint lives in the same module, so the
	// two cannot drift.
	runner := lint.NewRunner(faultinject.SiteSet(), lint.All()...)
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, runner.Package(pkg)...)
	}
	diags = append(diags, runner.Finish()...)

	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "atlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
