// Command atlint runs the repo-specific static-analysis suite
// (internal/lint) over the module: allocation-free hot paths, lock
// discipline, context threading, fault-site registration, error wrapping,
// 64-bit atomic alignment, wire-bounded allocation, goroutine termination,
// field/lock consistency and metric-name manifests. It exits non-zero when
// any diagnostic survives suppression, so it gates make lint / make check
// / CI.
//
// Usage:
//
//	atlint [-json] [-summary] [-C dir] [packages...]
//
// Packages default to ./... relative to -C (default: the current
// directory, which must lie inside the module). -json emits a
// machine-readable report (one array of {file,line,col,analyzer,message})
// on stdout for CI artifact upload; the human format matches go vet.
// -summary appends a per-analyzer finding count to stderr.
//
// Exit codes: 0 clean, 1 findings, 2 usage or internal error, 3 the
// loader failed or the patterns matched no packages. 3 is distinct from 0
// on purpose: a typo'd pattern analyzes nothing, and "nothing analyzed"
// must never read as "clean" in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"atmatrix/internal/faultinject"
	"atmatrix/internal/lint"
	"atmatrix/internal/metricnames"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	summary := fs.Bool("summary", false, "print per-analyzer finding counts to stderr")
	dir := fs.String("C", ".", "module directory to analyze from")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: atlint [-json] [-summary] [-C dir] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 3
	}
	pkgs, err := loader.Packages()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 3
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "atlint: patterns %q matched no packages\n", patterns)
		return 3
	}

	// The manifests the faultsite and metriccheck analyzers validate
	// against are the ones compiled into this binary — atlint lives in the
	// same module, so the two cannot drift.
	runner := lint.NewRunner(faultinject.SiteSet(), lint.All()...)
	runner.Metrics = metricnames.Set()
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, runner.Package(pkg)...)
	}
	diags = append(diags, runner.Finish()...)

	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *summary {
		printSummary(stderr, diags)
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "atlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// printSummary writes one line per analyzer with its finding count,
// including zero counts so CI logs show which analyzers actually ran.
func printSummary(w io.Writer, diags []lint.Diagnostic) {
	counts := map[string]int{}
	for _, a := range lint.All() {
		counts[a.Name] = 0
	}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "atlint summary (%d finding(s)):\n", len(diags))
	for _, name := range names {
		fmt.Fprintf(w, "  %-14s %d\n", name, counts[name])
	}
}
