package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the exit-code contract: 0 clean, 2 usage error, 3
// loader failure or empty pattern match. The empty-match case is the
// regression this file exists for — a typo'd pattern used to analyze
// nothing and exit 0, which CI read as "clean".
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{"-C", "../..", "./internal/density"}, 0},
		{"bad flag", []string{"-nosuchflag"}, 2},
		{"typo pattern fails go list", []string{"-C", "../..", "./nosuchdir/..."}, 3},
		{"pattern matches no packages", []string{"-C", "../..", "./internal/lint/testdata/..."}, 3},
		{"module dir does not exist", []string{"-C", "../../nosuchmodule", "./..."}, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(c.args, &stdout, &stderr)
			if got != c.want {
				t.Errorf("run(%q) = %d, want %d\nstdout: %s\nstderr: %s",
					c.args, got, c.want, stdout.String(), stderr.String())
			}
		})
	}
}

func TestEmptyMatchMessage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", "../..", "./internal/lint/testdata/..."}, &stdout, &stderr); got != 3 {
		t.Fatalf("exit = %d, want 3 (stderr: %s)", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Errorf("stderr should explain the empty match, got: %s", stderr.String())
	}
}

// TestSummary checks that -summary lists every analyzer, zero counts
// included, so CI logs show which analyzers actually ran.
func TestSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", "../..", "-summary", "./internal/density"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", got, stdout.String(), stderr.String())
	}
	out := stderr.String()
	for _, want := range []string{"atlint summary", "unboundedalloc", "racefield", "goroleak", "metriccheck", "lockcheck"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
