// Command atbench runs the paper-reproduction experiments end to end and
// prints the tables/series corresponding to the paper's figures.
//
// Usage:
//
//	atbench -exp tab1|fig2|fig5|fig7|fig8|fig9|fig10|all [flags]
//
// Examples:
//
//	atbench -exp fig8 -scale 0.0625
//	atbench -exp fig10 -matrices R3,R7
//	atbench -exp fig2 -matrices R3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atmatrix/internal/exp"
	"atmatrix/internal/numa"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment: tab1, fig2, fig5, fig7, fig8, fig9, fig10, or all")
		scale     = flag.Float64("scale", 1.0/16, "linear scale factor relative to paper-size matrices")
		matrices  = flag.String("matrices", "", "comma-separated Table I ids (default: experiment-specific)")
		flopCap   = flag.Float64("flopcap", 6e9, "skip dense approaches above this m·k·n budget (0 = never skip)")
		sockets   = flag.Int("sockets", 0, "simulated sockets (0 = detect)")
		cores     = flag.Int("cores", 0, "simulated cores per socket (0 = detect)")
		reps      = flag.Int("reps", 1, "repeat each timed measurement, keeping the fastest")
		csvDir    = flag.String("csv", "", "also export every table as CSV into this directory")
		calibrate = flag.Bool("calibrate", true, "refit the cost model to this machine (derives ρ0^W)")
		memFrac   = flag.Float64("memlimit", 0, "flexible result memory limit as a fraction of the dense footprint (0 = unlimited)")
	)
	flag.Parse()

	o := exp.DefaultOptions()
	o.Scale = *scale
	o.FlopCap = *flopCap
	o.Reps = *reps
	o.CSVDir = *csvDir
	o.Calibrate = *calibrate
	o.MemLimitFrac = *memFrac
	o.Out = os.Stdout
	if *matrices != "" {
		o.IDs = strings.Split(*matrices, ",")
	}
	if *sockets > 0 && *cores > 0 {
		o.Topology = numa.Topology{Sockets: *sockets, CoresPerSocket: *cores}
	}

	runners := map[string]func(exp.Options) error{
		"tab1":  func(o exp.Options) error { _, err := exp.RunTab1(o); return err },
		"fig2":  func(o exp.Options) error { _, err := exp.RunFig2(o); return err },
		"fig5":  func(o exp.Options) error { _, err := exp.RunFig5(o); return err },
		"fig6":  func(o exp.Options) error { _, err := exp.RunFig6(o); return err },
		"fig7":  func(o exp.Options) error { _, err := exp.RunFig7(o); return err },
		"fig8":  func(o exp.Options) error { _, err := exp.RunFig8(o); return err },
		"fig9":  func(o exp.Options) error { _, err := exp.RunFig9(o); return err },
		"fig10": func(o exp.Options) error { _, err := exp.RunFig10(o); return err },
	}
	order := []string{"tab1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}

	names := []string{*expName}
	if *expName == "all" {
		names = order
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "atbench: unknown experiment %q (want one of %s, all)\n",
				name, strings.Join(order, ", "))
			os.Exit(2)
		}
		if err := run(o); err != nil {
			fmt.Fprintf(os.Stderr, "atbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
