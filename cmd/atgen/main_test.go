package main

import "testing"

func TestBuildTableMatrix(t *testing.T) {
	a, err := build("R3", 0.01, "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 381 { // 38120 · 0.01
		t.Fatalf("dim %d", a.Rows)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCustomRMAT(t *testing.T) {
	a, err := build("", 0, "0.6, 0.2, 0.1, 0.1", 128, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 128 || a.NNZ() == 0 {
		t.Fatalf("shape %d, nnz %d", a.Rows, a.NNZ())
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := build("", 0, "", 0, 0, 1); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := build("R1", 1, "0.25,0.25,0.25,0.25", 8, 8, 1); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := build("", 0, "0.5,0.5", 8, 8, 1); err == nil {
		t.Fatal("two probabilities accepted")
	}
	if _, err := build("", 0, "a,b,c,d", 8, 8, 1); err == nil {
		t.Fatal("non-numeric probabilities accepted")
	}
	if _, err := build("nope", 1, "", 0, 0, 1); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}
