// Command atgen generates the Table I workload matrices (real-world
// stand-ins and RMAT instances) and writes them as MatrixMarket or compact
// binary COO files.
//
// Usage:
//
//	atgen -matrix R3 -scale 0.0625 -o r3.mtx
//	atgen -matrix G5 -format bin -o g5.coo
//	atgen -rmat 0.6,0.2,0.1,0.1 -dim 4096 -nnz 100000 -o custom.mtx
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"atmatrix/internal/core"
	"atmatrix/internal/gen"
	"atmatrix/internal/mat"
	"atmatrix/internal/mmio"
	"atmatrix/internal/rmat"
)

func main() {
	var (
		matrix = flag.String("matrix", "", "Table I id (R1–R9, G1–G9)")
		scale  = flag.Float64("scale", 1.0/16, "linear scale factor for -matrix")
		rmatP  = flag.String("rmat", "", "custom RMAT parameters a,b,c,d")
		dim    = flag.Int("dim", 4096, "dimension for -rmat")
		nnz    = flag.Int("nnz", 100000, "non-zero count for -rmat")
		seed   = flag.Int64("seed", 1, "seed for -rmat")
		format = flag.String("format", "mtx", "output format: mtx (MatrixMarket) or bin (binary COO)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	a, err := build(*matrix, *scale, *rmatP, *dim, *nnz, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atgen: %v\n", err)
		os.Exit(1)
	}

	write := func(w io.Writer) error {
		switch *format {
		case "mtx":
			return mmio.WriteMatrixMarket(w, a)
		case "bin":
			return mmio.WriteBinary(w, a)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *out == "" {
		err = write(os.Stdout)
	} else {
		// Crash-safe: a generation interrupted mid-stream must not leave a
		// torn file where a benchmark script expects a matrix.
		_, err = core.WriteFileAtomic(*out, func(w io.Writer) (int64, error) {
			return 0, write(w)
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "atgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "atgen: wrote %d×%d matrix, %d non-zeros (ρ = %.4g%%)\n",
		a.Rows, a.Cols, a.NNZ(), 100*a.Density())
}

func build(matrix string, scale float64, rmatP string, dim, nnz int, seed int64) (*mat.COO, error) {
	switch {
	case matrix != "" && rmatP != "":
		return nil, fmt.Errorf("use either -matrix or -rmat, not both")
	case matrix != "":
		spec, err := gen.Lookup(matrix)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale)
	case rmatP != "":
		parts := strings.Split(rmatP, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("-rmat wants four comma-separated probabilities")
		}
		var vals [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad probability %q: %w", p, err)
			}
			vals[i] = v
		}
		return rmat.Generate(dim, nnz, rmat.Params{A: vals[0], B: vals[1], C: vals[2], D: vals[3]}, seed)
	default:
		return nil, fmt.Errorf("specify -matrix or -rmat (try -matrix R3)")
	}
}
