package main

import (
	"os"
	"path/filepath"
	"testing"

	"atmatrix/internal/mat"
	"atmatrix/internal/mmio"
)

func TestLoadTableMatrix(t *testing.T) {
	a, err := load("R7", 0.005, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFromFiles(t *testing.T) {
	dir := t.TempDir()
	src := mat.NewCOO(4, 4)
	src.Append(1, 2, 3.5)

	mtx := filepath.Join(dir, "m.mtx")
	f, err := os.Create(mtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteMatrixMarket(f, src); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a, err := load("", 0, mtx)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 1 || a.ToDense().At(1, 2) != 3.5 {
		t.Fatal("mtx load wrong")
	}

	bin := filepath.Join(dir, "m.coo")
	f, err = os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteBinary(f, src); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a, err = load("", 0, bin)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 1 {
		t.Fatal("binary load wrong")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := load("", 0, ""); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := load("R1", 1, "x.mtx"); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := load("", 0, "/nonexistent/file.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBytesStr(t *testing.T) {
	cases := map[int64]string{
		10:      "10B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.00GB",
	}
	for in, want := range cases {
		if got := bytesStr(in); got != want {
			t.Fatalf("bytesStr(%d) = %q, want %q", in, got, want)
		}
	}
}
