// Command atinfo partitions a matrix into an AT MATRIX and reports its
// tile layout, statistics and density map — a textual rendition of Fig. 2
// of the paper.
//
// Usage:
//
//	atinfo -matrix R3 -scale 0.0625            # Table I stand-in
//	atinfo -file m.mtx                          # MatrixMarket input
//	atinfo -matrix R3 -k 4                      # explicit granularity 2^k
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atmatrix/internal/core"
	"atmatrix/internal/density"
	"atmatrix/internal/gen"
	"atmatrix/internal/mat"
	"atmatrix/internal/mmio"
	"atmatrix/internal/numa"
)

func main() {
	var (
		matrix = flag.String("matrix", "", "Table I id (R1–R9, G1–G9)")
		scale  = flag.Float64("scale", 1.0/16, "linear scale factor for -matrix")
		file   = flag.String("file", "", "MatrixMarket (.mtx) or binary COO input file")
		k      = flag.Int("k", 0, "atomic block granularity b_atomic = 2^k (0 = derive from LLC)")
		layout = flag.Bool("layout", true, "print the tile layout map")
		dmap   = flag.Bool("densitymap", false, "print the block density map and the estimated self-multiplication map")
	)
	flag.Parse()

	a, err := load(*matrix, *scale, *file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atinfo: %v\n", err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	cfg.Topology = numa.Detect()
	if *k > 0 {
		cfg.BAtomic = 1 << *k
	}
	// Keep the layout picture readable: never less than 8 blocks across.
	for cfg.BAtomic > 4 && (a.Rows/cfg.BAtomic < 8 || a.Cols/cfg.BAtomic < 8) {
		cfg.BAtomic /= 2
	}

	am, stats, err := core.Partition(a, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atinfo: %v\n", err)
		os.Exit(1)
	}
	sp, d := am.TileCount()
	fmt.Printf("matrix:      %d×%d, %d non-zeros (ρ = %.4g%%)\n", a.Rows, a.Cols, a.NNZ(), 100*a.Density())
	fmt.Printf("b_atomic:    %d (grid %d×%d)\n", cfg.BAtomic, am.BR, am.BC)
	fmt.Printf("tiles:       %d total — %d sparse, %d dense\n", len(am.Tiles), sp, d)
	fmt.Printf("memory:      AT MATRIX %s, CSR %s, dense %s\n",
		bytesStr(am.Bytes()), bytesStr(mat.SparseBytes(a.NNZ())), bytesStr(mat.DenseBytes(a.Rows, a.Cols)))
	fmt.Printf("partitioning: sort %v, blockcnts %v, recursion+materialize %v\n",
		stats.SortTime, stats.CountTime, stats.BuildTime)
	if *layout {
		fmt.Printf("\ntile layout ('#' dense, shades sparse, space empty):\n%s", am.LayoutString())
	}
	if *dmap {
		m := am.DensityMap()
		fmt.Printf("\nblock density map:\n%s", m.String())
		est := density.EstimateProduct(m, m)
		fmt.Printf("\nestimated density map of A·A:\n%s", est.String())
	}
}

func load(matrix string, scale float64, file string) (*mat.COO, error) {
	switch {
	case matrix != "" && file != "":
		return nil, fmt.Errorf("use either -matrix or -file, not both")
	case matrix != "":
		spec, err := gen.Lookup(matrix)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(file, ".mtx") {
			return mmio.ReadMatrixMarket(f)
		}
		return mmio.ReadBinary(f)
	default:
		return nil, fmt.Errorf("specify -matrix or -file (try -matrix R3)")
	}
}

func bytesStr(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}
