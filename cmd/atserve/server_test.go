package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"atmatrix/internal/core"
	"atmatrix/internal/mmio"
	"atmatrix/internal/rmat"
	"atmatrix/internal/service"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.LLCBytes = 3 * 8 * 64 * 64
	cfg.BAtomic = 8
	cfg.Topology.Sockets = 2
	cfg.Topology.CoresPerSocket = 2
	return cfg
}

// testServer stands up the production handler stack on httptest.
func newTestServer(t *testing.T, budget int64, opts service.Options) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(serverConfig{cfg: testConfig(), budget: budget, opts: opts, maxUpload: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.shutdown(30 * time.Second)
	})
	return s, ts
}

// rmatStream generates an n-square R-MAT matrix and returns it in the
// binary COO format, ready for upload.
func rmatStream(t *testing.T, n, nnz int, seed int64) *bytes.Buffer {
	t.Helper()
	coo, err := rmat.Generate(n, nnz, rmat.Uniform(), seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mmio.WriteBinary(&buf, coo); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func upload(t *testing.T, base, name string, body io.Reader) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/matrices?name="+name+"&format=coo", "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func multiply(t *testing.T, base string, req map[string]any) (*http.Response, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding multiply response: %v", err)
	}
	return resp, out
}

// metricValue fetches /metrics and returns the named sample.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: parsing %q: %v", name, fields[1], err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, data)
	return 0
}

// TestServeE2E drives the full lifecycle over HTTP: upload two R-MAT
// matrices, multiply into a stored result, inspect it, check the metrics
// counters, and delete it.
func TestServeE2E(t *testing.T) {
	_, ts := newTestServer(t, 0, service.Options{})

	for i, name := range []string{"A", "B"} {
		resp := upload(t, ts.URL, name, rmatStream(t, 64, 640, int64(100+i)))
		var info map[string]any
		json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d (%v)", name, resp.StatusCode, info)
		}
		if info["rows"].(float64) != 64 || info["cols"].(float64) != 64 {
			t.Fatalf("upload %s: info %v", name, info)
		}
	}
	// Duplicate name → 409.
	if resp := upload(t, ts.URL, "A", rmatStream(t, 64, 640, 1)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate upload: status %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// Missing name → 400.
	resp, err := http.Post(ts.URL+"/v1/matrices?format=coo", "application/octet-stream", rmatStream(t, 8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless upload: status %d, want 400", resp.StatusCode)
	}

	mresp, out := multiply(t, ts.URL, map[string]any{"a": "A", "b": "B", "store": "AB"})
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: status %d (%v)", mresp.StatusCode, out)
	}
	if out["rows"].(float64) != 64 || out["cols"].(float64) != 64 || out["stored"] != "AB" {
		t.Fatalf("multiply result %v", out)
	}

	// The stored product is listed and multipliable in a chain.
	lresp, err := http.Get(ts.URL + "/v1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Matrices []map[string]any `json:"matrices"`
	}
	json.NewDecoder(lresp.Body).Decode(&listing)
	lresp.Body.Close()
	if len(listing.Matrices) != 3 {
		t.Fatalf("listing has %d matrices, want 3", len(listing.Matrices))
	}
	cresp, cout := multiply(t, ts.URL, map[string]any{"chain": []string{"A", "B", "AB"}})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chain multiply: status %d (%v)", cresp.StatusCode, cout)
	}
	if cout["chain_expr"] == "" {
		t.Fatalf("chain result missing plan: %v", cout)
	}
	// Executed stages: two materialized steps, or one fused pass over the
	// whole chain when the planner's cost gate picks row-streaming.
	steps, ok := cout["steps"].([]any)
	if !ok || len(steps) == 0 {
		t.Fatalf("chain result steps = %v, want executed steps", cout["steps"])
	}
	for _, s := range steps {
		step := s.(map[string]any)
		if step["expr"] == "" || step["density"] == nil {
			t.Fatalf("chain step missing expr/fill: %v", step)
		}
	}

	// Multiply against a missing operand → 404.
	nresp, _ := multiply(t, ts.URL, map[string]any{"a": "A", "b": "nosuch"})
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing operand: status %d, want 404", nresp.StatusCode)
	}

	if got := metricValue(t, ts.URL, "atserve_jobs_completed_total"); got != 2 {
		t.Fatalf("completed = %v, want 2", got)
	}
	if got := metricValue(t, ts.URL, "atserve_jobs_failed_total"); got != 1 {
		t.Fatalf("failed = %v, want 1", got)
	}
	if got := metricValue(t, ts.URL, "atserve_catalog_matrices"); got != 3 {
		t.Fatalf("catalog matrices = %v, want 3", got)
	}
	if got := metricValue(t, ts.URL, "atserve_mult_wall_seconds_total"); got <= 0 {
		t.Fatalf("wall seconds = %v, want > 0", got)
	}

	// Delete and verify 404 on re-delete.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/matrices/AB", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", dresp.StatusCode)
	}
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", dresp2.StatusCode)
	}

	// Healthz reports ok while serving.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", hresp.StatusCode)
	}
}

// TestServeCorruptUpload verifies the typed serialization errors surface
// as 422 at the HTTP layer.
func TestServeCorruptUpload(t *testing.T) {
	s, ts := newTestServer(t, 0, service.Options{})

	// Round-trip a valid ATM stream, then flip a payload byte.
	coo, err := rmat.Generate(64, 640, rmat.Uniform(), 7)
	if err != nil {
		t.Fatal(err)
	}
	am, _, err := core.Partition(coo, s.cat.Config())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := am.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()
	bad[len(bad)-10] ^= 0x01
	resp, err := http.Post(ts.URL+"/v1/matrices?name=corrupt&format=atm",
		"application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt upload: status %d (%s), want 422", resp.StatusCode, body)
	}
}

// TestServeQueueFull429 fills the admission queue behind a slow job and
// verifies the overflow request is rejected with 429 + Retry-After. The
// worker-occupying multiply is large enough to run for seconds at this
// tiny tile size, leaving a wide window to observe the full queue; the
// queued and overflow requests use small operands so the drain is quick.
func TestServeQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, 0, service.Options{Workers: 1, QueueDepth: 1})

	for name, gen := range map[string]*bytes.Buffer{
		"big": rmatStream(t, 1024, 150000, 3),
		"a":   rmatStream(t, 64, 640, 30),
		"b":   rmatStream(t, 64, 640, 31),
	} {
		if resp := upload(t, ts.URL, name, gen); resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		} else {
			resp.Body.Close()
		}
	}

	// Occupy the single worker with the big job, then the single queue
	// slot with a small one.
	var wg sync.WaitGroup
	results := make(chan int, 2)
	launch := func(a, b string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := multiply(t, ts.URL, map[string]any{"a": a, "b": b})
			results <- resp.StatusCode
		}()
	}
	launch("big", "big")
	for deadline := time.Now().Add(30 * time.Second); metricValue(t, ts.URL, "atserve_jobs_inflight") == 0; {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	launch("a", "b")
	for deadline := time.Now().Add(30 * time.Second); metricValue(t, ts.URL, "atserve_queue_depth") == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is now full: the next request must bounce.
	resp, out := multiply(t, ts.URL, map[string]any{"a": "a", "b": "b"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow multiply: status %d (%v), want 429", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := metricValue(t, ts.URL, "atserve_jobs_rejected_total"); got != 1 {
		t.Fatalf("rejected = %v, want 1", got)
	}
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK {
			t.Fatalf("admitted job returned %d", code)
		}
	}
}

// TestServeDeadline504 verifies a job that outruns its deadline aborts
// mid-multiply and maps to 504.
func TestServeDeadline504(t *testing.T) {
	_, ts := newTestServer(t, 0, service.Options{})

	if resp := upload(t, ts.URL, "big", rmatStream(t, 512, 60000, 4)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload big: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp, out := multiply(t, ts.URL, map[string]any{"a": "big", "b": "big", "timeout_ms": 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline multiply: status %d (%v), want 504", resp.StatusCode, out)
	}
	if got := metricValue(t, ts.URL, "atserve_jobs_canceled_total"); got != 1 {
		t.Fatalf("canceled = %v, want 1", got)
	}
}

// TestServeDrainFlipsReadyz verifies the liveness/readiness split during
// shutdown: /readyz flips to 503 so load balancers stop routing here,
// /healthz (liveness) stays 200 reporting "draining" so orchestrators do
// not kill the process mid-drain, and both load and multiply requests are
// refused.
func TestServeDrainFlipsReadyz(t *testing.T) {
	s, err := newServer(serverConfig{cfg: testConfig(), maxUpload: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	if resp := upload(t, ts.URL, "A", rmatStream(t, 64, 640, 5)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// Before the drain, both probes answer 200.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: status %d, want 200", rresp.StatusCode)
	}
	if err := s.shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hbody struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hbody); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || hbody.Status != "draining" {
		t.Fatalf("healthz while draining: status %d %q, want 200 \"draining\" (liveness must not kill a draining process)", hresp.StatusCode, hbody.Status)
	}
	rresp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", rresp.StatusCode)
	}
	if resp := upload(t, ts.URL, "B", rmatStream(t, 64, 640, 6)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload while draining: status %d, want 503", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	mresp, _ := multiply(t, ts.URL, map[string]any{"a": "A", "b": "A"})
	if mresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("multiply while draining: status %d, want 503", mresp.StatusCode)
	}
}

// TestConcurrentServeMultiplies hammers the HTTP layer from many clients
// under -race: every request either succeeds or is rejected with 429, and
// the metrics reconcile. Run by `make race`.
func TestConcurrentServeMultiplies(t *testing.T) {
	_, ts := newTestServer(t, 0, service.Options{Workers: 2, QueueDepth: 4})
	for i, name := range []string{"A", "B"} {
		if resp := upload(t, ts.URL, name, rmatStream(t, 64, 640, int64(200+i))); resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		} else {
			resp.Body.Close()
		}
	}
	const n = 32
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := multiply(t, ts.URL, map[string]any{"a": "A", "b": "B"})
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	var ok, rejected int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if ok+rejected != n {
		t.Fatalf("ok %d + rejected %d != %d", ok, rejected, n)
	}
	if got := metricValue(t, ts.URL, "atserve_jobs_completed_total"); got != float64(ok) {
		t.Fatalf("completed = %v, want %d", got, ok)
	}
	if got := metricValue(t, ts.URL, "atserve_jobs_rejected_total"); got != float64(rejected) {
		t.Fatalf("rejected = %v, want %d", got, rejected)
	}
	accepted := metricValue(t, ts.URL, "atserve_jobs_accepted_total")
	completed := metricValue(t, ts.URL, "atserve_jobs_completed_total")
	failed := metricValue(t, ts.URL, "atserve_jobs_failed_total")
	canceled := metricValue(t, ts.URL, "atserve_jobs_canceled_total")
	queued := metricValue(t, ts.URL, "atserve_queue_depth")
	inflight := metricValue(t, ts.URL, "atserve_jobs_inflight")
	if completed+failed+canceled+queued+inflight != accepted {
		t.Fatalf("accounting identity broken: %v+%v+%v+%v+%v != %v",
			completed, failed, canceled, queued, inflight, accepted)
	}
}

// TestServeSmoke builds the real binary, starts it on a random port, loads
// two matrices, runs one multiply, checks /healthz, and shuts it down with
// SIGTERM. Gated behind ATSERVE_SMOKE=1 (run via `make serve-smoke`).
func TestServeSmoke(t *testing.T) {
	if os.Getenv("ATSERVE_SMOKE") != "1" {
		t.Skip("set ATSERVE_SMOKE=1 to run the binary smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "atserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-b-atomic", "8", "-sockets", "2", "-cores", "2", "-drain", "10s")
	var logs bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var base string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base = "http://" + strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never wrote addr file; logs:\n%s", logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v; logs:\n%s", err, logs.String())
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", hresp.StatusCode)
	}
	for i, name := range []string{"A", "B"} {
		resp := upload(t, base, name, rmatStream(t, 64, 640, int64(300+i)))
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
	}
	mresp, out := multiply(t, base, map[string]any{"a": "A", "b": "B"})
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: status %d (%v)", mresp.StatusCode, out)
	}
	if out["rows"].(float64) != 64 {
		t.Fatalf("multiply result %v", out)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited with %v; logs:\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not exit after SIGTERM; logs:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "clean shutdown") {
		t.Fatalf("no clean shutdown in logs:\n%s", logs.String())
	}
	fmt.Println("smoke ok:", out)
}
