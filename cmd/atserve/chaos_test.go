package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"atmatrix/internal/faultinject"
	"atmatrix/internal/leakcheck"
	"atmatrix/internal/sched"
	"atmatrix/internal/service"
)

// healthz fetches /healthz and returns the status string plus reasons.
func healthz(t *testing.T, base string) (string, []string, int) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Status, out.Reasons, resp.StatusCode
}

// TestChaosE2E is the acceptance chaos drill: with faults injected through
// the same registry ATSERVE_FAULTS arms, the process must survive a kernel
// panic, a hung task, and a corrupt upload — failing only the affected jobs
// with typed statuses, reporting degradation on /healthz, exposing the fault
// counters on /metrics, serving healthy multiplies afterwards, and leaking
// zero goroutines.
func TestChaosE2E(t *testing.T) {
	leakcheck.Check(t)
	t.Cleanup(func() { sched.RuntimeFor(testConfig().Topology).Close() })
	t.Cleanup(faultinject.Disable)
	_, ts := newTestServer(t, 0, service.Options{
		Watchdog:  25 * time.Millisecond,
		RetryBase: 2 * time.Millisecond,
	})

	for i, name := range []string{"a", "b", "c", "d"} {
		resp := upload(t, ts.URL, name, rmatStream(t, 64, 640, int64(50+i)))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// --- Fault 1: kernel panic. The job fails typed (500 with the panic
	// surfaced), the operand pair is quarantined as a combination, the
	// process stays up.
	faultinject.Enable(1, faultinject.Rule{Site: "sched.task", Kind: faultinject.KindPanic})
	resp, out := multiply(t, ts.URL, map[string]any{"a": "a", "b": "b"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked multiply: status %d (%v), want 500", resp.StatusCode, out)
	}
	faultinject.Disable()
	resp, out = multiply(t, ts.URL, map[string]any{"a": "a", "b": "b"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("multiply on quarantined pair: status %d (%v), want 422", resp.StatusCode, out)
	}
	// The quarantine is surgical: each member still multiplies with other
	// co-operands.
	resp, out = multiply(t, ts.URL, map[string]any{"a": "a", "b": "c"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quarantined-pair member with healthy co-operand: status %d (%v), want 200", resp.StatusCode, out)
	}
	if status, reasons, code := healthz(t, ts.URL); status != "degraded" || code != http.StatusOK || len(reasons) == 0 {
		t.Fatalf("healthz after panic = %q (%d) %v, want degraded/200 with reasons", status, code, reasons)
	}

	// --- Fault 2: hung task. The watchdog degrades the stuck team, the
	// transient failure is retried on the healthy team, the job succeeds.
	faultinject.Enable(1, faultinject.Rule{
		Site: "sched.task", Kind: faultinject.KindDelay, Delay: 300 * time.Millisecond,
	})
	resp, out = multiply(t, ts.URL, map[string]any{"a": "c", "b": "d"})
	faultinject.Disable()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply with hung task: status %d (%v), want 200 via retry", resp.StatusCode, out)
	}

	// --- Fault 3: corrupt .atm upload. Rejected typed, name quarantined,
	// and a later multiply naming it fails fast instead of 404-ing.
	r, err := http.Post(ts.URL+"/v1/matrices?name=corrupt&format=atm",
		"application/octet-stream", bytes.NewReader([]byte("ATMAT1\x00garbage")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt upload: status %d, want 422", r.StatusCode)
	}
	resp, out = multiply(t, ts.URL, map[string]any{"a": "corrupt", "b": "c"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("multiply on corrupt name: status %d (%v), want 422", resp.StatusCode, out)
	}

	// --- Recovery: healthy operands multiply fine after all three faults.
	resp, out = multiply(t, ts.URL, map[string]any{"a": "c", "b": "d"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy multiply after chaos: status %d (%v), want 200", resp.StatusCode, out)
	}

	// --- Counters: every fault class left a nonzero trace on /metrics.
	for _, metric := range []string{
		"atserve_retries_total", "atserve_task_panics_total", "atserve_watchdog_timeouts_total",
	} {
		if v := metricValue(t, ts.URL, metric); v == 0 {
			t.Errorf("%s = 0 after chaos run, want nonzero", metric)
		}
	}
	if v := metricValue(t, ts.URL, "atserve_quarantined_matrices"); v != 2 {
		t.Errorf("quarantined = %v, want 2 (the a×b pair, corrupt)", v)
	}

	// --- Operator reset: deleting an implicated name lifts the quarantine
	// of every combination it belongs to; a fresh upload of "a" serves
	// again.
	for _, name := range []string{"a", "b", "corrupt"} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/matrices/"+name, nil)
		dr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dr.Body.Close()
		if dr.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %s: status %d, want 204", name, dr.StatusCode)
		}
	}
	resp = upload(t, ts.URL, "a", rmatStream(t, 64, 640, 60))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-upload a: status %d", resp.StatusCode)
	}
	resp, out = multiply(t, ts.URL, map[string]any{"a": "a", "b": "c"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply after quarantine reset: status %d (%v), want 200", resp.StatusCode, out)
	}

	// Let the team degraded by fault 2 self-heal so the leak check sees a
	// quiescent runtime.
	rt := sched.RuntimeFor(testConfig().Topology)
	for deadline := time.Now().Add(2 * time.Second); len(rt.DegradedSockets()) != 0; {
		if time.Now().After(deadline) {
			t.Fatalf("sockets still degraded: %v", rt.DegradedSockets())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosBrownoutShedsLowPriority drives the breaker directly: once queue
// rejections cluster, low-priority multiplies are shed with 503 + jittered
// Retry-After while normal traffic keeps being admitted, and /healthz
// reports the brownout.
func TestChaosBrownoutShedsLowPriority(t *testing.T) {
	leakcheck.Check(t)
	t.Cleanup(func() { sched.RuntimeFor(testConfig().Topology).Close() })
	s, ts := newTestServer(t, 0, service.Options{})

	resp := upload(t, ts.URL, "a", rmatStream(t, 64, 640, 70))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}

	now := time.Now()
	for i := 0; i < s.brk.threshold; i++ {
		s.brk.recordRejection(now)
	}
	if !s.brk.open(time.Now()) {
		t.Fatal("breaker did not open at threshold")
	}

	body, _ := json.Marshal(map[string]any{"a": "a", "b": "a", "priority": "low"})
	lr, err := http.Post(ts.URL+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if lr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("low-priority multiply during brownout: status %d, want 503", lr.StatusCode)
	}
	ra, err := strconv.Atoi(lr.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Fatalf("Retry-After = %q, want an integer in [1,3]", lr.Header.Get("Retry-After"))
	}

	// Normal-priority traffic is NOT shed during a brownout.
	mr, out := multiply(t, ts.URL, map[string]any{"a": "a", "b": "a"})
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("normal multiply during brownout: status %d (%v), want 200", mr.StatusCode, out)
	}

	if status, reasons, _ := healthz(t, ts.URL); status != "degraded" || len(reasons) == 0 {
		t.Fatalf("healthz during brownout = %q %v, want degraded with reasons", status, reasons)
	}
	if v := metricValue(t, ts.URL, "atserve_brownout_trips_total"); v != 1 {
		t.Errorf("brownout trips = %v, want 1", v)
	}
	if v := metricValue(t, ts.URL, "atserve_brownout_shed_total"); v != 1 {
		t.Errorf("brownout shed = %v, want 1", v)
	}
}
