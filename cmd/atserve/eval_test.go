package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"atmatrix/internal/faultinject"
	"atmatrix/internal/leakcheck"
	"atmatrix/internal/sched"
	"atmatrix/internal/service"
)

// eval posts to /v1/eval and decodes the JSON response.
func eval(t *testing.T, base string, req map[string]any) (*http.Response, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding eval response: %v", err)
	}
	return resp, out
}

// TestEvalEndpoint: POST /v1/eval end to end — plan echo, fusion, store,
// typed client errors, and the eval metrics.
func TestEvalEndpoint(t *testing.T) {
	leakcheck.Check(t)
	t.Cleanup(func() { sched.RuntimeFor(testConfig().Topology).Close() })
	_, ts := newTestServer(t, 0, service.Options{Verify: 1})

	for i, name := range []string{"a", "b", "c"} {
		resp := upload(t, ts.URL, name, rmatStream(t, 64, 640, int64(90+i)))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Happy path: a fused 3-term chain, stored for reuse.
	resp, out := eval(t, ts.URL, map[string]any{"expr": "a*b*c", "store": "abc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval a*b*c: status %d (%v), want 200", resp.StatusCode, out)
	}
	plan, ok := out["plan"].(map[string]any)
	if !ok {
		t.Fatalf("eval response has no plan echo: %v", out)
	}
	if plan["fusion"] == "" || plan["expression"] != "a*b*c" {
		t.Fatalf("plan echo = %v, want expression a*b*c with a fusion strategy", plan)
	}
	if fs, _ := out["fused_stages"].(float64); fs == 0 {
		t.Fatalf("eval of a square 3-chain reported no fused stages: %v", out)
	}
	if out["stored"] != "abc" {
		t.Fatalf("stored = %v, want abc", out["stored"])
	}

	// The stored product multiplies like any catalog entry.
	resp2, out2 := multiply(t, ts.URL, map[string]any{"a": "abc", "b": "a"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("multiply with stored eval result: status %d (%v)", resp2.StatusCode, out2)
	}

	// Bindings rename identifiers.
	resp3, out3 := eval(t, ts.URL, map[string]any{
		"expr": "M*N", "bindings": map[string]string{"M": "a", "N": "b"},
	})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("bound eval: status %d (%v)", resp3.StatusCode, out3)
	}

	// Typed client errors.
	for _, tc := range []struct {
		req  map[string]any
		want int
	}{
		{map[string]any{"expr": "a*"}, http.StatusBadRequest},     // parse error
		{map[string]any{}, http.StatusBadRequest},                 // missing expr
		{map[string]any{"expr": "a*nosuch"}, http.StatusNotFound}, // unknown matrix
		{map[string]any{"expr": "a*b", "iterations": -2}, http.StatusBadRequest},
	} {
		resp, out := eval(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("eval %v: status %d (%v), want %d", tc.req, resp.StatusCode, out, tc.want)
		}
	}

	if v := metricValue(t, ts.URL, "atserve_eval_jobs_total"); v < 2 {
		t.Errorf("atserve_eval_jobs_total = %v, want ≥ 2", v)
	}
	if v := metricValue(t, ts.URL, "atserve_eval_fused_stages_total"); v == 0 {
		t.Errorf("atserve_eval_fused_stages_total = 0, want > 0")
	}
	if v := metricValue(t, ts.URL, "atserve_eval_plan_seconds_total"); v <= 0 {
		t.Errorf("atserve_eval_plan_seconds_total = %v, want > 0", v)
	}
}

// TestEvalChaos: the expression fault sites drive the retry and
// quarantine machinery end to end — transient plan faults are retried
// into success, stage panics fail typed and quarantine the operand
// combination, deleting an implicated matrix lifts the block, and no
// goroutines leak through any of it.
func TestEvalChaos(t *testing.T) {
	leakcheck.Check(t)
	t.Cleanup(func() { sched.RuntimeFor(testConfig().Topology).Close() })
	t.Cleanup(faultinject.Disable)
	_, ts := newTestServer(t, 0, service.Options{
		RetryBase: 2 * time.Millisecond,
		Verify:    1,
	})

	for i, name := range []string{"a", "b", "c"} {
		resp := upload(t, ts.URL, name, rmatStream(t, 64, 640, int64(70+i)))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// --- Fault 1: a transient planning fault. The retry loop re-executes
	// and the job succeeds; the retry is visible in the counters.
	faultinject.Enable(1, faultinject.Rule{Site: "expr.plan", Kind: faultinject.KindTransient, Count: 1})
	resp, out := eval(t, ts.URL, map[string]any{"expr": "a*b*c"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval through transient plan fault: status %d (%v), want 200", resp.StatusCode, out)
	}
	if v := metricValue(t, ts.URL, "atserve_retries_total"); v < 1 {
		t.Fatalf("atserve_retries_total = %v, want ≥ 1 after transient plan fault", v)
	}
	faultinject.Disable()

	// --- Fault 2: a stage panic. The job fails typed — never a wrong
	// answer — and the operand combination is quarantined.
	faultinject.Enable(1, faultinject.Rule{Site: "expr.stage", Kind: faultinject.KindPanic})
	resp, out = eval(t, ts.URL, map[string]any{"expr": "a*b*c"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("eval with stage panic: status %d (%v), want 500", resp.StatusCode, out)
	}
	faultinject.Disable()

	resp, out = eval(t, ts.URL, map[string]any{"expr": "a*b*c"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("eval on quarantined combination: status %d (%v), want 422", resp.StatusCode, out)
	}
	// The quarantine is surgical: subsets of the combination still run.
	resp, out = eval(t, ts.URL, map[string]any{"expr": "a*b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval of subset of quarantined combination: status %d (%v), want 200", resp.StatusCode, out)
	}

	// --- Recovery: deleting and re-loading an implicated matrix lifts the
	// combination quarantine.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/matrices/c", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete c: status %d, want 204", dresp.StatusCode)
	}
	uresp := upload(t, ts.URL, "c", rmatStream(t, 64, 640, 72))
	if uresp.StatusCode != http.StatusCreated {
		t.Fatalf("re-upload c: status %d", uresp.StatusCode)
	}
	uresp.Body.Close()
	resp, out = eval(t, ts.URL, map[string]any{"expr": "a*b*c"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval after lifting quarantine: status %d (%v), want 200", resp.StatusCode, out)
	}
}
