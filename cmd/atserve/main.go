// Command atserve exposes the AT MATRIX catalog and the ATMULT job manager
// over HTTP, turning the library into the serving stack the paper frames:
// matrices are persistent named objects in a main-memory store, and
// multiplications arrive as queries against them.
//
// Endpoints:
//
//	POST   /v1/matrices            load a matrix (upload stream or server path)
//	GET    /v1/matrices            list resident matrices + catalog stats
//	DELETE /v1/matrices/{name}     drop a matrix
//	POST   /v1/multiply            run A·B or a chain, optionally store result
//	GET    /healthz                liveness (503 while draining)
//	GET    /metrics                Prometheus text-format counters
//
// Cluster roles (-role coordinator|worker) add the /cluster/v1/* RPC
// endpoints: a coordinator shards multiplies over registered workers
// (boot-time -peers, or workers self-register with -coordinator) and
// degrades to local execution when none are healthy.
//
// Example:
//
//	atserve -addr :8080 -budget 1073741824 &
//	curl -sT a.mtx 'localhost:8080/v1/matrices?name=A&format=mtx'
//	curl -sT b.mtx 'localhost:8080/v1/matrices?name=B&format=mtx'
//	curl -s -d '{"a":"A","b":"B","store":"AB"}' localhost:8080/v1/multiply
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"atmatrix/internal/cluster"
	"atmatrix/internal/core"
	"atmatrix/internal/faultinject"
	"atmatrix/internal/numa"
	"atmatrix/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use :0 for a random port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		budget      = flag.Int64("budget", 0, "catalog resident-bytes budget (0 = unlimited)")
		queueDepth  = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		workers     = flag.Int("workers", 0, "concurrent multiply jobs (0 = one per socket)")
		timeout     = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		watchdog    = flag.Duration("watchdog", 0, "per-tile-task deadline; a stuck kernel degrades its team instead of hanging the job (0 = off)")
		retries     = flag.Int("retries", 0, "max retries of transiently-failed jobs (0 = default of 2, negative = none)")
		verify      = flag.Int("verify", 0, "Freivalds verification rounds per multiply result (0 = off; k rounds bound the false-negative rate by 2^-k)")
		dataDir     = flag.String("data-dir", "", "durable catalog directory: write-through persistence, spill-to-disk eviction, crash recovery (empty = memory-only)")
		scrub       = flag.Duration("scrub", 0, "background integrity-scrub period re-verifying resident tile checksums (0 = off)")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight jobs")
		maxUpload   = flag.Int64("max-upload", 1<<30, "maximum upload body size in bytes")
		allowPath   = flag.Bool("allow-path-loads", false, "allow JSON loads that name files on the server filesystem")
		paper       = flag.Bool("paper", false, "use the paper's system configuration instead of autodetection")
		bAtomic     = flag.Int("b-atomic", 0, "override b_atomic (power of two; 0 = derive from LLC)")
		sockets     = flag.Int("sockets", 0, "simulated sockets (0 = detect)")
		cores       = flag.Int("cores", 0, "simulated cores per socket (0 = detect)")
		role        = flag.String("role", "", "cluster role: empty = standalone, 'coordinator' shards multiplies over workers, 'worker' executes shards for a coordinator")
		peers       = flag.String("peers", "", "coordinator only: comma-separated worker addresses to register at boot (workers can also self-register)")
		coordURL    = flag.String("coordinator", "", "worker only: coordinator base URL to self-register with (retried until it answers)")
		advertise   = flag.String("advertise", "", "worker only: address to advertise to the coordinator (default: the bound listen address)")
		reannounce  = flag.Duration("reannounce", 10*time.Second, "worker only: period for re-announcing to the coordinator, so a restarted coordinator relearns its workers (0 = announce once)")
		replication = flag.Int("replication", 0, "coordinator only: shard replica count R for cataloged matrices (0 = default of 2; capped by worker count)")
		mergeWindow = flag.Int64("merge-window", 0, "coordinator only: bytes of in-flight partial-product frames buffered during the streaming merge (0 = default of 64 MiB)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *paper {
		cfg = core.PaperConfig()
	}
	if *bAtomic > 0 {
		cfg.BAtomic = *bAtomic
	}
	if *sockets > 0 && *cores > 0 {
		cfg.Topology = numa.Topology{Sockets: *sockets, CoresPerSocket: *cores}
	}

	// Fault injection stays disarmed unless the operator opts in through the
	// environment; the hooks themselves are always compiled in (one atomic
	// load when idle) so chaos drills run against the production binary.
	if spec := os.Getenv(faultinject.EnvVar); spec != "" {
		var seed int64
		if sv := os.Getenv(faultinject.EnvSeedVar); sv != "" {
			if _, err := fmt.Sscanf(sv, "%d", &seed); err != nil {
				log.Fatalf("atserve: bad %s %q: %v", faultinject.EnvSeedVar, sv, err)
			}
		}
		rules, err := faultinject.EnableFromSpec(spec, seed)
		if err != nil {
			log.Fatalf("atserve: %v", err)
		}
		log.Printf("atserve: FAULT INJECTION ARMED (%s=%q, seed %d): %d rule(s)", faultinject.EnvVar, spec, seed, len(rules))
	}

	// Cluster roles: a coordinator shards pair multiplies over its workers
	// and degrades to local execution when none are healthy; a worker
	// additionally mounts the shard-execution RPC endpoints. Either role
	// keeps the full catalog API — a worker is a complete atserve node.
	var coord *cluster.Coordinator
	var worker *cluster.Worker
	switch *role {
	case "":
	case "coordinator":
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		coord = cluster.NewCoordinator(cfg, cluster.Options{
			Replication: *replication,
			MergeWindow: *mergeWindow,
		}, peerList)
	case "worker":
		worker = cluster.NewWorker(cfg)
	default:
		log.Fatalf("atserve: unknown -role %q (want coordinator or worker)", *role)
	}

	s, err := newServer(serverConfig{
		cfg:    cfg,
		budget: *budget,
		opts: service.Options{
			QueueDepth:     *queueDepth,
			Workers:        *workers,
			DefaultTimeout: *timeout,
			Watchdog:       *watchdog,
			MaxRetries:     *retries,
			Verify:         *verify,
		},
		allowPath:   *allowPath,
		maxUpload:   *maxUpload,
		dataDir:     *dataDir,
		scrubPeriod: *scrub,
		coord:       coord,
		worker:      worker,
	})
	if err != nil {
		log.Fatalf("atserve: %v", err)
	}
	// Boot recovery runs behind the listener so health checks see the
	// process come up immediately — /healthz reports "recovering" until
	// the pinned matrices are resident again.
	if *dataDir != "" {
		go func() {
			t0 := time.Now()
			rs, err := s.recoverCatalog()
			if err != nil {
				log.Printf("atserve: catalog recovery: %v", err)
				return
			}
			log.Printf("atserve: catalog recovered in %v: %d registered, %d pinned loaded, %d failed",
				time.Since(t0).Round(time.Millisecond), rs.Registered, rs.Loaded, len(rs.Failed))
			for _, f := range rs.Failed {
				log.Printf("atserve: pinned reload failed: %s", f)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("atserve: listen: %v", err)
	}
	bound := ln.Addr().String()
	log.Printf("atserve: listening on %s (b_atomic=%d, topology=%dx%d, budget=%d)",
		bound, cfg.BAtomic, cfg.Topology.Sockets, cfg.Topology.CoresPerSocket, *budget)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("atserve: writing addr file: %v", err)
		}
	}
	// Worker self-registration: announce the bound (or advertised) address
	// to the coordinator, retrying until it answers — boot order between
	// coordinator and workers does not matter — and keep re-announcing
	// every -reannounce period for the process lifetime. Registration is
	// idempotent, so the steady-state announcements are no-ops; what they
	// buy is coordinator restarts: a bounced coordinator comes back with an
	// empty worker table, and the periodic announce repopulates it without
	// any operator action.
	if worker != nil && *coordURL != "" {
		self := *advertise
		if self == "" {
			self = bound
		}
		go announceToCoordinator(*coordURL, self, *reannounce)
	}

	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("atserve: %v: draining (timeout %v)", got, *drain)
	case err := <-done:
		log.Fatalf("atserve: serve: %v", err)
	}

	// Shutdown order: stop admitting jobs and fail health checks first, then
	// let in-flight HTTP requests (which are waiting on their jobs) finish
	// inside the drain window, cancelling whatever is still running at the
	// deadline.
	drainErr := s.shutdown(*drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("atserve: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("atserve: drain: %v", drainErr)
		os.Exit(1)
	}
	fmt.Println("atserve: clean shutdown")
}

// announceToCoordinator posts this worker's address to the coordinator's
// registration endpoint: retrying every 2s until the first success, then
// re-announcing every period for the process lifetime (period <= 0 stops
// after the first success — the old boot-time-only behavior). The
// periodic re-announce is what survives coordinator restarts: the old
// register-once loop returned after its first success, so a coordinator
// bounced afterwards never relearned the worker. The goroutine dies with
// the process on shutdown.
func announceToCoordinator(coordURL, self string, period time.Duration) {
	base := strings.TrimSuffix(coordURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}
	body := fmt.Sprintf(`{"addr":%q}`, self)
	announced := false
	for {
		resp, err := client.Post(base+"/cluster/v1/register", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if !announced {
					log.Printf("atserve: registered with coordinator %s as %s", base, self)
					announced = true
				}
				if period <= 0 {
					return
				}
				time.Sleep(period)
				continue
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		log.Printf("atserve: coordinator registration (%s): %v; retrying", base, err)
		time.Sleep(2 * time.Second)
	}
}
