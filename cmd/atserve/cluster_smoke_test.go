package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestClusterSmoke builds the real binary and stands up a four-process
// cluster on loopback: one coordinator plus three workers (R=2
// replication). It uploads two matrices (sharded and replicated at PUT
// time), runs a sharded multiply through the coordinator's normal
// /v1/multiply API, checks that the cluster metrics account for the
// remote by-reference execution and the streaming merge, then SIGKILLs a
// worker and waits for the anti-entropy pass to re-replicate its shards
// back to R — after which a second multiply must still succeed. Gated
// behind ATSERVE_SMOKE=1 (run via `make cluster-smoke`).
func TestClusterSmoke(t *testing.T) {
	if os.Getenv("ATSERVE_SMOKE") != "1" {
		t.Skip("set ATSERVE_SMOKE=1 to run the cluster smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "atserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	start := func(name string, extra ...string) (*exec.Cmd, *bytes.Buffer, string) {
		t.Helper()
		addrFile := filepath.Join(dir, name+".addr")
		args := append([]string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-b-atomic", "8", "-sockets", "2", "-cores", "2", "-drain", "10s",
		}, extra...)
		cmd := exec.Command(bin, args...)
		var logs bytes.Buffer
		cmd.Stdout, cmd.Stderr = &logs, &logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		for deadline := time.Now().Add(15 * time.Second); ; {
			if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
				return cmd, &logs, strings.TrimSpace(string(data))
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never wrote addr file; logs:\n%s", name, logs.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Both registration paths get exercised: worker1 is named on the
	// coordinator's -peers list, worker2 and worker3 self-register against
	// the running coordinator with -coordinator (re-announcing every 2s).
	w1cmd, w1logs, w1addr := start("worker1", "-role", "worker")
	coordCmd, clogs, caddr := start("coord",
		"-role", "coordinator", "-peers", w1addr, "-verify", "2")
	base := "http://" + caddr
	_, w2logs, _ := start("worker2", "-role", "worker", "-coordinator", base, "-reannounce", "2s")
	_, w3logs, _ := start("worker3", "-role", "worker", "-coordinator", base, "-reannounce", "2s")

	// All workers must turn healthy once heartbeats reach them.
	for deadline := time.Now().Add(15 * time.Second); ; {
		if metricValue(t, base, "atserve_cluster_workers_healthy") == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never became healthy; coordinator logs:\n%s\nworker1:\n%s\nworker2:\n%s\nworker3:\n%s",
				clogs.String(), w1logs.String(), w2logs.String(), w3logs.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	for i, name := range []string{"A", "B"} {
		resp := upload(t, base, name, rmatStream(t, 96, 1400, int64(700+i)))
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
	}
	// PUT-time sharding: both uploads were cut into shards and every shard
	// shipped to R=2 replicas.
	shards := metricValue(t, base, "atserve_cluster_shards_total")
	if metricValue(t, base, "atserve_cluster_sharded_matrices") != 2 || shards == 0 {
		t.Fatalf("uploads were not sharded; coordinator logs:\n%s", clogs.String())
	}
	if got := metricValue(t, base, "atserve_cluster_shard_ships_total"); got != 2*shards {
		t.Fatalf("shard ships = %v, want %v (R=2 over %v shards)", got, 2*shards, shards)
	}
	if got := metricValue(t, base, "atserve_cluster_under_replicated_shards"); got != 0 {
		t.Fatalf("under-replicated = %v right after placement, want 0", got)
	}

	mresp, out := multiply(t, base, map[string]any{"a": "A", "b": "B", "store": "AB"})
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: status %d (%v); coordinator logs:\n%s", mresp.StatusCode, out, clogs.String())
	}
	if out["rows"].(float64) != 96 {
		t.Fatalf("multiply result %v", out)
	}

	// The multiply must have executed remotely — the checksum of the drill:
	// sharded execution, not a silent local fallback — with the operands
	// resolved from the workers' shard stores and the partial products
	// streamed frame by frame.
	if got := metricValue(t, base, "atserve_cluster_remote_multiplies_total"); got != 1 {
		t.Fatalf("remote multiplies = %v, want 1; coordinator logs:\n%s", got, clogs.String())
	}
	if got := metricValue(t, base, "atserve_cluster_local_fallbacks_total"); got != 0 {
		t.Fatalf("local fallbacks = %v, want 0", got)
	}
	if got := metricValue(t, base, "atserve_cluster_shard_ref_hits_total"); got == 0 {
		t.Fatalf("no operand resolved by shard reference; coordinator logs:\n%s", clogs.String())
	}
	if got := metricValue(t, base, "atserve_cluster_merge_frames_total"); got == 0 {
		t.Fatal("no streamed merge frames recorded")
	}

	// Liveness/readiness split: a serving coordinator is both.
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}

	// Chaos leg: SIGKILL worker1 mid-cluster. The heartbeats mark it dead,
	// the kicked anti-entropy pass re-homes its primaries and re-replicates
	// its shards onto the two survivors, and the gauges return to R.
	if err := w1cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		if metricValue(t, base, "atserve_cluster_re_replications_total") > 0 &&
			metricValue(t, base, "atserve_cluster_under_replicated_shards") == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never recovered after worker kill; re_replications=%v under_replicated=%v; coordinator logs:\n%s",
				metricValue(t, base, "atserve_cluster_re_replications_total"),
				metricValue(t, base, "atserve_cluster_under_replicated_shards"), clogs.String())
		}
		time.Sleep(200 * time.Millisecond)
	}
	mresp2, out2 := multiply(t, base, map[string]any{"a": "A", "b": "B"})
	if mresp2.StatusCode != http.StatusOK {
		t.Fatalf("multiply after worker kill: status %d (%v); coordinator logs:\n%s", mresp2.StatusCode, out2, clogs.String())
	}
	if got := metricValue(t, base, "atserve_cluster_remote_multiplies_total"); got != 2 {
		t.Fatalf("remote multiplies after failover = %v, want 2", got)
	}

	// The killed worker stays in the table as dead, so liveness reports
	// degraded — with the per-worker table spelling out which one — while
	// readiness keeps routing traffic: replication is already back at R.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), `"status":"degraded"`) {
		t.Fatalf("healthz after worker kill: status %d body %s", hresp.StatusCode, buf.String())
	}
	if !strings.Contains(buf.String(), `"workers"`) || !strings.Contains(buf.String(), `"state":"dead"`) {
		t.Fatalf("healthz missing dead worker in cluster table: %s", buf.String())
	}
	rresp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d after recovery from worker kill, want 200", rresp.StatusCode)
	}

	if err := coordCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- coordCmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator exited with %v; logs:\n%s", err, clogs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("coordinator did not exit after SIGTERM; logs:\n%s", clogs.String())
	}
	if !strings.Contains(clogs.String(), "clean shutdown") {
		t.Fatalf("no clean shutdown in coordinator logs:\n%s", clogs.String())
	}
	fmt.Println("cluster smoke ok:", out)
}
