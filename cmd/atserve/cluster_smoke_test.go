package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestClusterSmoke builds the real binary and stands up a three-process
// cluster on loopback: one coordinator plus two self-registering workers.
// It uploads two matrices, runs a sharded multiply through the
// coordinator's normal /v1/multiply API, and checks that the cluster
// metrics account for the remote execution and that /healthz sees both
// workers healthy. Gated behind ATSERVE_SMOKE=1 (run via
// `make cluster-smoke`).
func TestClusterSmoke(t *testing.T) {
	if os.Getenv("ATSERVE_SMOKE") != "1" {
		t.Skip("set ATSERVE_SMOKE=1 to run the cluster smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "atserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	start := func(name string, extra ...string) (*exec.Cmd, *bytes.Buffer, string) {
		t.Helper()
		addrFile := filepath.Join(dir, name+".addr")
		args := append([]string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-b-atomic", "8", "-sockets", "2", "-cores", "2", "-drain", "10s",
		}, extra...)
		cmd := exec.Command(bin, args...)
		var logs bytes.Buffer
		cmd.Stdout, cmd.Stderr = &logs, &logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		for deadline := time.Now().Add(15 * time.Second); ; {
			if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
				return cmd, &logs, strings.TrimSpace(string(data))
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never wrote addr file; logs:\n%s", name, logs.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Both registration paths get exercised: worker1 is named on the
	// coordinator's -peers list, worker2 self-registers against the running
	// coordinator with -coordinator.
	_, w1logs, w1addr := start("worker1", "-role", "worker")
	coordCmd, clogs, caddr := start("coord",
		"-role", "coordinator", "-peers", w1addr, "-verify", "2")
	base := "http://" + caddr
	_, w2logs, _ := start("worker2", "-role", "worker", "-coordinator", base)

	// Both workers must turn healthy once heartbeats reach them.
	for deadline := time.Now().Add(15 * time.Second); ; {
		if metricValue(t, base, "atserve_cluster_workers_healthy") == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never became healthy; coordinator logs:\n%s\nworker1:\n%s\nworker2:\n%s",
				clogs.String(), w1logs.String(), w2logs.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	for i, name := range []string{"A", "B"} {
		resp := upload(t, base, name, rmatStream(t, 96, 1400, int64(700+i)))
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
	}
	mresp, out := multiply(t, base, map[string]any{"a": "A", "b": "B", "store": "AB"})
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: status %d (%v); coordinator logs:\n%s", mresp.StatusCode, out, clogs.String())
	}
	if out["rows"].(float64) != 96 {
		t.Fatalf("multiply result %v", out)
	}

	// The multiply must have executed remotely — the checksum of the drill:
	// sharded execution, not a silent local fallback.
	if got := metricValue(t, base, "atserve_cluster_remote_multiplies_total"); got != 1 {
		t.Fatalf("remote multiplies = %v, want 1; coordinator logs:\n%s", got, clogs.String())
	}
	if got := metricValue(t, base, "atserve_cluster_local_fallbacks_total"); got != 0 {
		t.Fatalf("local fallbacks = %v, want 0", got)
	}

	// /healthz on the coordinator reports the per-worker table and no
	// degradation.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), `"status":"ok"`) {
		t.Fatalf("healthz: status %d body %s", hresp.StatusCode, buf.String())
	}
	if !strings.Contains(buf.String(), `"workers"`) {
		t.Fatalf("healthz missing cluster worker table: %s", buf.String())
	}

	if err := coordCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- coordCmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator exited with %v; logs:\n%s", err, clogs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("coordinator did not exit after SIGTERM; logs:\n%s", clogs.String())
	}
	if !strings.Contains(clogs.String(), "clean shutdown") {
		t.Fatalf("no clean shutdown in coordinator logs:\n%s", clogs.String())
	}
	fmt.Println("cluster smoke ok:", out)
}
