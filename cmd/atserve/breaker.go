package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// breaker is the brownout circuit of the front-end: it watches admission
// rejections (the saturation signal — a full queue means the workers cannot
// keep up) and, once rejections cluster, opens for a cooldown during which
// low-priority multiplies are shed immediately with 503 + Retry-After
// instead of competing with interactive traffic for the queue. Shedding the
// deprioritized tail is what keeps the high-priority path's queue slots
// available during overload — degrade before falling over.
type breaker struct {
	window    time.Duration // how far back rejections count
	threshold int           // rejections within window that open the circuit
	cooldown  time.Duration // how long the circuit stays open

	mu         sync.Mutex
	rejections []time.Time
	openUntil  time.Time

	trips atomic.Int64 // times the circuit opened
	shed  atomic.Int64 // low-priority jobs shed while open
}

func newBreaker() *breaker {
	return &breaker{window: 10 * time.Second, threshold: 5, cooldown: 5 * time.Second}
}

// recordRejection notes one queue-full rejection and opens the circuit when
// the rejection rate crosses the threshold.
func (b *breaker) recordRejection(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cutoff := now.Add(-b.window)
	kept := b.rejections[:0]
	for _, t := range b.rejections {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	b.rejections = append(kept, now)
	if len(b.rejections) >= b.threshold && now.After(b.openUntil) {
		b.openUntil = now.Add(b.cooldown)
		b.trips.Add(1)
	}
}

// open reports whether the circuit is currently open (brownout active).
func (b *breaker) open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.openUntil)
}

// retryAfter renders a jittered Retry-After value in seconds. The jitter
// spreads the retry herd: a constant would synchronize every backed-off
// client onto the same instant, re-saturating the queue at each period.
func retryAfter() string {
	return fmt.Sprintf("%d", 1+rand.Intn(3))
}
