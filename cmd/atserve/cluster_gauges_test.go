package main

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atmatrix/internal/cluster"
	"atmatrix/internal/core"
	"atmatrix/internal/service"
)

// startClusterWorker serves an in-process cluster worker for the server
// tests, returning its address and server (for tests that kill it early).
func startClusterWorker(t *testing.T, cfg core.Config) (string, *http.Server) {
	t.Helper()
	mux := http.NewServeMux()
	cluster.NewWorker(cfg).Register(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close(); <-done })
	return ln.Addr().String(), srv
}

// TestClusterReplicationGaugesRecover is satellite coverage for the
// replication gauges: after a worker death the atserve_cluster_* metrics
// must report degraded replication, and after the anti-entropy pass
// re-replicates the lost shards they must report recovery to R. The
// repair loop is disabled (RepairPeriod < 0) so the degraded window is
// deterministic; the pass runs explicitly.
func TestClusterReplicationGaugesRecover(t *testing.T) {
	cfg := testConfig()
	addr0, victim := startClusterWorker(t, cfg)
	addr1, _ := startClusterWorker(t, cfg)
	addr2, _ := startClusterWorker(t, cfg)
	coord := cluster.NewCoordinator(cfg, cluster.Options{
		HeartbeatPeriod: 25 * time.Millisecond,
		SuspectAfter:    1,
		DeadAfter:       2,
		Replication:     2,
		RepairPeriod:    -1,
		MaxRetries:      1,
		RetryBase:       2 * time.Millisecond,
		RetryMax:        10 * time.Millisecond,
	}, []string{addr0, addr1, addr2})
	s, err := newServer(serverConfig{cfg: cfg, opts: service.Options{}, maxUpload: 1 << 30, coord: coord})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.shutdown(30 * time.Second)
	})

	for i, name := range []string{"A", "B"} {
		resp := upload(t, ts.URL, name, rmatStream(t, 96, 1400, int64(800+i)))
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_sharded_matrices"); got != 2 {
		t.Fatalf("sharded matrices = %v, want 2", got)
	}
	shards := metricValue(t, ts.URL, "atserve_cluster_shards_total")
	if shards == 0 {
		t.Fatal("no shards placed at PUT time")
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_shard_ships_total"); got != 2*shards {
		t.Fatalf("shard ships = %v, want %v (R=2)", got, 2*shards)
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_under_replicated_shards"); got != 0 {
		t.Fatalf("under-replicated = %v right after placement, want 0", got)
	}

	// A sharded multiply streams its partial products by reference.
	mresp, out := multiply(t, ts.URL, map[string]any{"a": "A", "b": "B"})
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: status %d (%v)", mresp.StatusCode, out)
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_remote_multiplies_total"); got != 1 {
		t.Fatalf("remote multiplies = %v, want 1", got)
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_shard_ref_hits_total"); got == 0 {
		t.Fatal("no operand resolved by shard reference")
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_merge_frames_total"); got == 0 {
		t.Fatal("no streamed merge frames recorded")
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_merge_peak_bytes"); got <= 0 {
		t.Fatalf("merge peak = %v, want > 0", got)
	}

	// Kill one worker; the heartbeats mark it dead and the gauges must show
	// the lost replicas.
	_ = victim.Close()
	deadline := time.Now().Add(10 * time.Second)
	for metricValue(t, ts.URL, "atserve_cluster_workers_dead") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("killed worker never marked dead")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_under_replicated_shards"); got == 0 {
		t.Fatal("gauges do not report degraded replication after worker death")
	}
	// /healthz degrades (but stays alive), /readyz stays ready: degraded
	// replication is a repair item, not a reason to shed traffic.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hbuf bytes.Buffer
	hbuf.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(hbuf.String(), "under-replicated") {
		t.Fatalf("healthz after death: status %d body %s", hresp.StatusCode, hbuf.String())
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d during degraded replication, want 200", rresp.StatusCode)
	}

	// One explicit anti-entropy pass restores R onto the survivors.
	if _, err := coord.RepairPass(context.Background()); err != nil {
		t.Fatalf("repair pass: %v", err)
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_re_replications_total"); got == 0 {
		t.Fatal("repair pass recorded no re-replications")
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_under_replicated_shards"); got != 0 {
		t.Fatalf("under-replicated = %v after repair, want 0", got)
	}
	if got := metricValue(t, ts.URL, "atserve_cluster_repair_passes_total"); got == 0 {
		t.Fatal("repair pass not counted")
	}
}

// TestWorkerReannounceRepopulatesBouncedCoordinator bounces the
// coordinator under a periodically re-announcing worker: the second
// coordinator process boots with an empty worker table on the same
// address, and the worker's next announce must repopulate it without any
// operator action — the failure the old register-once loop had.
func TestWorkerReannounceRepopulatesBouncedCoordinator(t *testing.T) {
	cfg := testConfig()
	coord1, srv1, addr, err := tryServeCoord(t, cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	// The announce goroutine is process-lifetime by design; it dies with
	// the test binary.
	go announceToCoordinator("http://"+addr, "198.51.100.7:9", 25*time.Millisecond)

	waitRegistered := func(coord *cluster.Coordinator, who string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			for _, w := range coord.Workers() {
				if strings.Contains(w.Addr, "198.51.100.7:9") {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never saw the worker register; table: %v", who, coord.Workers())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitRegistered(coord1, "first coordinator")

	// Bounce: kill the first coordinator, boot a second on the same
	// address with an empty worker table.
	_ = srv1.Close()
	var coord2 *cluster.Coordinator
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, _, _, err := tryServeCoord(t, cfg, addr)
		if err == nil {
			coord2 = c
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(coord2.Workers()) != 0 {
		t.Fatalf("fresh coordinator already has workers: %v", coord2.Workers())
	}
	waitRegistered(coord2, "bounced coordinator")
}

// tryServeCoord stands up a coordinator-role server on addr, surfacing
// the bind failure so callers can retry re-binding a just-released
// address.
func tryServeCoord(t *testing.T, cfg core.Config, addr string) (*cluster.Coordinator, *http.Server, string, error) {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, "", err
	}
	coord := cluster.NewCoordinator(cfg, cluster.Options{HeartbeatPeriod: -1}, nil)
	s, err := newServer(serverConfig{cfg: cfg, opts: service.Options{}, maxUpload: 1 << 30, coord: coord})
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.handler()}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
		s.shutdown(time.Second)
	})
	return coord, srv, ln.Addr().String(), nil
}
