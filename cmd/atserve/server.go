package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"atmatrix/internal/catalog"
	"atmatrix/internal/cluster"
	"atmatrix/internal/core"
	"atmatrix/internal/numa"
	"atmatrix/internal/sched"
	"atmatrix/internal/service"
)

// serverConfig bundles everything newServer needs; the zero value of the
// optional fields (dataDir, scrubPeriod, ...) yields the memory-only
// server the earlier PRs shipped.
type serverConfig struct {
	cfg         core.Config
	budget      int64
	opts        service.Options
	allowPath   bool          // permit {"path": ...} loads/saves on the server filesystem
	maxUpload   int64         // request body cap for uploads
	dataDir     string        // durable catalog backing store ("" = memory-only)
	scrubPeriod time.Duration // background integrity scrub period (0 = off)

	// coord makes this process a cluster coordinator: pair multiplies are
	// sharded across its registered workers (service.Options.Distribute)
	// and POST /cluster/v1/register admits new workers. worker mounts the
	// shard-execution endpoints instead. Both nil = standalone node.
	coord  *cluster.Coordinator
	worker *cluster.Worker
}

// server wires the catalog and the job manager to the HTTP surface. It is
// separate from main so the httptest suite can drive the exact production
// handler stack.
type server struct {
	cat        *catalog.Catalog
	mgr        *service.Manager
	topo       numa.Topology
	brk        *breaker
	started    time.Time
	draining   atomic.Bool
	recovering atomic.Bool
	allowPath  bool
	maxUpload  int64
	coord      *cluster.Coordinator
	worker     *cluster.Worker
}

func newServer(sc serverConfig) (*server, error) {
	cat, err := catalog.Open(sc.cfg, sc.budget, sc.dataDir)
	if err != nil {
		return nil, err
	}
	if sc.maxUpload <= 0 {
		sc.maxUpload = 1 << 30
	}
	if sc.coord != nil {
		// The coordinator executes pair multiplies by sharding them over
		// its workers; it owns the fallback to local execution, so the
		// manager's queueing, retries and quarantine apply unchanged.
		sc.opts.Distribute = sc.coord.Multiply
		if sc.dataDir == "" {
			// Memory-only: the catalog is complete now, so the sharded
			// catalog (and its anti-entropy loop) can attach immediately.
			// Durable catalogs attach after recovery re-reads the manifest's
			// shard maps.
			sc.coord.AttachCatalog(cat)
		}
	}
	s := &server{
		cat:       cat,
		mgr:       service.New(cat, sc.opts),
		topo:      sc.cfg.Topology,
		brk:       newBreaker(),
		started:   time.Now(),
		allowPath: sc.allowPath,
		maxUpload: sc.maxUpload,
		coord:     sc.coord,
		worker:    sc.worker,
	}
	// The scrubber's findings route into the service quarantine: a matrix
	// that fails its checksum scan is blocked from multiplies until the
	// repair lands, and the repair lifts the block again.
	cat.SetIntegrityHooks(
		func(name, reason string) { s.mgr.Quarantine(name, reason) },
		func(name string) { s.mgr.Unquarantine(name) },
	)
	cat.StartScrubber(sc.scrubPeriod)
	return s, nil
}

// recoverCatalog rebuilds the catalog from the data directory's manifest,
// holding /healthz in the "recovering" state for the duration (pinned
// matrices reload eagerly, which can take a while). main runs it in the
// background so the listener is up — and readable for health checks —
// while recovery proceeds.
func (s *server) recoverCatalog() (catalog.RecoverStats, error) {
	if s.cat.DataDir() == "" {
		return catalog.RecoverStats{}, nil
	}
	s.recovering.Store(true)
	defer s.recovering.Store(false)
	rs, err := s.cat.Recover()
	if s.coord != nil {
		// Attach even when some entries failed to reload: the shard maps
		// that did recover are served, and the anti-entropy loop reconciles
		// them against the workers' inventories.
		s.coord.AttachCatalog(s.cat)
	}
	return rs, err
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", s.handleLoad)
	mux.HandleFunc("PUT /v1/matrices", s.handleLoad) // curl -T sends PUT
	mux.HandleFunc("GET /v1/matrices", s.handleList)
	mux.HandleFunc("DELETE /v1/matrices/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/matrices/{name}/save", s.handleSave)
	mux.HandleFunc("POST /v1/multiply", s.handleMultiply)
	mux.HandleFunc("POST /v1/eval", s.handleEval)
	mux.HandleFunc("POST /v1/admin/scrub", s.handleScrub)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.worker != nil {
		s.worker.Register(mux)
	}
	if s.coord != nil {
		mux.HandleFunc("POST /cluster/v1/register", s.handleClusterRegister)
	}
	return mux
}

// registerRequest is the JSON body a worker posts to self-register.
type registerRequest struct {
	Addr string `json:"addr"`
}

// handleClusterRegister admits a worker into the coordinator's registry.
// Registration is idempotent by address — a restarting worker re-posting
// its address is a no-op, and its health revives on the next successful
// probe rather than here.
func (s *server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Addr == "" {
		jsonError(w, http.StatusBadRequest, "missing worker addr")
		return
	}
	added := s.coord.Register(req.Addr)
	writeJSON(w, http.StatusOK, map[string]any{"addr": req.Addr, "registered": added})
}

// shutdown stops admission (healthz flips to 503 for load balancers),
// drains the job manager, and stops the background scrubber.
func (s *server) shutdown(drain time.Duration) error {
	s.draining.Store(true)
	err := s.mgr.Close(drain)
	if s.coord != nil {
		s.coord.Close()
	}
	s.cat.Close()
	return err
}

// handleScrub runs one integrity scrub pass synchronously — the operator's
// on-demand version of the background loop — and returns the pass summary
// plus the cumulative catalog stats.
func (s *server) handleScrub(w http.ResponseWriter, r *http.Request) {
	pass := s.cat.ScrubPass()
	writeJSON(w, http.StatusOK, map[string]any{
		"pass":  pass,
		"stats": s.cat.Stats(),
	})
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// loadRequest is the JSON body of a path-based load.
type loadRequest struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Format string `json:"format"`
	Pin    bool   `json:"pin"`
}

// handleLoad admits a matrix into the catalog. Two request shapes:
//
//   - application/json body {"name","path","format","pin"}: the server
//     reads the file itself (requires -allow-path-loads).
//   - any other content type: the body is the matrix stream, with
//     ?name=...&format=atm|mtx|coo&pin=true query parameters.
func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var (
		name, formatStr string
		pin             bool
		src             io.Reader
	)
	if r.Header.Get("Content-Type") == "application/json" {
		var req loadRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			jsonError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		if !s.allowPath {
			jsonError(w, http.StatusForbidden, "path loads disabled; upload the stream or start with -allow-path-loads")
			return
		}
		if req.Path == "" {
			jsonError(w, http.StatusBadRequest, "missing path")
			return
		}
		f, err := os.Open(req.Path)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "opening %s: %v", req.Path, err)
			return
		}
		defer f.Close()
		name, formatStr, pin, src = req.Name, req.Format, req.Pin, f
	} else {
		q := r.URL.Query()
		name, formatStr = q.Get("name"), q.Get("format")
		pin = q.Get("pin") == "true"
		src = http.MaxBytesReader(w, r.Body, s.maxUpload)
	}
	if name == "" {
		jsonError(w, http.StatusBadRequest, "missing matrix name")
		return
	}
	format, err := catalog.ParseFormat(formatStr)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := s.cat.Load(name, format, src, pin)
	switch {
	case err == nil:
		// A fresh, checksum-verified load supersedes any earlier poisoning
		// under this name.
		s.mgr.Unquarantine(name)
		if s.coord != nil {
			// Replicate the new matrix's tile-row shards across the cluster
			// so multiplies reference them instead of shipping operands.
			// Best-effort: an unsharded matrix still multiplies through the
			// legacy wire-ship path, and the anti-entropy loop retries as
			// workers come back.
			s.coord.DropShards(r.Context(), name)
			if serr := s.coord.ShardByName(r.Context(), name); serr != nil {
				log.Printf("atserve: sharding %s across cluster: %v", name, serr)
			}
		}
		writeJSON(w, http.StatusCreated, info)
	case errors.Is(err, catalog.ErrExists):
		jsonError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, catalog.ErrBudget):
		jsonError(w, http.StatusInsufficientStorage, "%v", err)
	case errors.Is(err, core.ErrChecksum), errors.Is(err, core.ErrBadMagic):
		// The stream failed verification: quarantine the name so multiplies
		// referencing it fail fast and typed until a good load replaces it.
		s.mgr.Quarantine(name, fmt.Sprintf("corrupt load: %v", err))
		jsonError(w, http.StatusUnprocessableEntity, "corrupt upload: %v", err)
	default:
		jsonError(w, http.StatusBadRequest, "loading %s: %v", name, err)
	}
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"matrices": s.cat.List(),
		"stats":    s.cat.Stats(),
	})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Deleting a quarantined name lifts the quarantine even when the matrix
	// itself is gone (e.g. it never loaded): delete is the operator's reset.
	wasQuarantined := s.mgr.Unquarantine(name)
	if s.coord != nil {
		s.coord.DropShards(r.Context(), name)
	}
	if err := s.cat.Delete(name); err != nil {
		if wasQuarantined {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		jsonError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// saveRequest is the JSON body of POST /v1/matrices/{name}/save.
type saveRequest struct {
	Path string `json:"path"`
}

// handleSave writes a resident matrix to a server-side file crash-safely
// (temp file + fsync + atomic rename). Like path loads, writing server
// paths is gated behind -allow-path-loads.
func (s *server) handleSave(w http.ResponseWriter, r *http.Request) {
	if !s.allowPath {
		jsonError(w, http.StatusForbidden, "path saves disabled; start with -allow-path-loads")
		return
	}
	var req saveRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Path == "" {
		jsonError(w, http.StatusBadRequest, "missing path")
		return
	}
	name := r.PathValue("name")
	n, err := s.cat.Save(name, req.Path)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{"name": name, "path": req.Path, "bytes": n})
	case errors.Is(err, catalog.ErrNotFound):
		jsonError(w, http.StatusNotFound, "%v", err)
	default:
		jsonError(w, http.StatusInternalServerError, "saving %s: %v", name, err)
	}
}

// multiplyRequest is the JSON body of POST /v1/multiply: either {a, b} or
// {chain: [...]}, optionally storing the result under a new name.
type multiplyRequest struct {
	A         string   `json:"a"`
	B         string   `json:"b"`
	Chain     []string `json:"chain"`
	Store     string   `json:"store"`
	Pin       bool     `json:"pin"`
	TimeoutMS int64    `json:"timeout_ms"`
	// Priority "low" marks the job sheddable: during a brownout (the
	// breaker opened on queue saturation) low-priority multiplies are
	// rejected immediately with 503 + Retry-After instead of taking queue
	// slots from interactive traffic. Empty or "normal" is never shed.
	Priority string `json:"priority"`
}

func (s *server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	var req multiplyRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if s.shedLowPriority(w, req.Priority) {
		return
	}
	s.submitAndReply(w, r, service.Request{
		A: req.A, B: req.B, Chain: req.Chain,
		Store: req.Store, Pin: req.Pin,
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	})
}

// evalRequest is the JSON body of POST /v1/eval: an expression over
// catalog names ("A*B*C", "pow(P,20)*x"), optional identifier→catalog-name
// bindings, an iteration-count override for pow(), and the same store/pin/
// timeout/priority options multiply takes.
type evalRequest struct {
	Expr       string            `json:"expr"`
	Bindings   map[string]string `json:"bindings"`
	Iterations int               `json:"iterations"`
	Store      string            `json:"store"`
	Pin        bool              `json:"pin"`
	TimeoutMS  int64             `json:"timeout_ms"`
	Priority   string            `json:"priority"`
}

// handleEval plans and evaluates an expression over cataloged matrices.
// The response echoes the plan the optimizer chose — association order,
// fusion strategy, estimated cost — next to the executed stages.
func (s *server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req evalRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Expr == "" {
		jsonError(w, http.StatusBadRequest, "missing expr")
		return
	}
	if s.shedLowPriority(w, req.Priority) {
		return
	}
	s.submitAndReply(w, r, service.Request{
		Expr: req.Expr, Bindings: req.Bindings, Iterations: req.Iterations,
		Store: req.Store, Pin: req.Pin,
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	})
}

// shedLowPriority rejects sheddable work during a brownout; reports
// whether the request was shed (and answered).
func (s *server) shedLowPriority(w http.ResponseWriter, priority string) bool {
	if priority == "low" && s.brk.open(time.Now()) {
		s.brk.shed.Add(1)
		w.Header().Set("Retry-After", retryAfter())
		jsonError(w, http.StatusServiceUnavailable, "brownout: low-priority jobs shed, retry later")
		return true
	}
	return false
}

// submitAndReply runs the shared job lifecycle of /v1/multiply and
// /v1/eval: admission (backpressure and quarantine mapped to typed HTTP
// errors), waiting out the job, and rendering its result or failure.
func (s *server) submitAndReply(w http.ResponseWriter, r *http.Request, sreq service.Request) {
	job, err := s.mgr.Submit(sreq)
	switch {
	case err == nil:
	case errors.Is(err, service.ErrQueueFull):
		s.brk.recordRejection(time.Now())
		w.Header().Set("Retry-After", retryAfter())
		jsonError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, service.ErrDraining):
		jsonError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, service.ErrQuarantined):
		jsonError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	default:
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The admission queue bounds in-server concurrency; the HTTP handler
	// itself just waits for its job (or the client going away).
	select {
	case <-job.Done:
	case <-r.Context().Done():
		// The client hung up; the job still runs to completion (its own
		// deadline bounds it), but nobody is listening.
		jsonError(w, http.StatusRequestTimeout, "client cancelled")
		return
	}
	res, err := job.Wait()
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, context.DeadlineExceeded):
		jsonError(w, http.StatusGatewayTimeout, "job deadline exceeded")
	case errors.Is(err, context.Canceled):
		jsonError(w, http.StatusServiceUnavailable, "job cancelled by shutdown")
	case errors.Is(err, service.ErrBadRequest):
		jsonError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, catalog.ErrNotFound):
		jsonError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, catalog.ErrExists):
		jsonError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, catalog.ErrBudget):
		jsonError(w, http.StatusInsufficientStorage, "%v", err)
	default:
		jsonError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleHealthz is the LIVENESS probe: it answers 200 for as long as the
// process is up, including during boot recovery ("recovering") and
// shutdown drain ("draining") — restarting a process because it is
// draining or replaying its manifest would only destroy the work in
// flight. Routability is /readyz's job. The body reports one of four
// states: "ok", "recovering", "degraded" (still serving, but a brownout
// is active, a worker team was abandoned by a watchdog, matrices sit in
// quarantine, cluster workers are suspect or dead, or catalog shards are
// under-replicated — each spelled out in reasons), or "draining". On a
// coordinator the body also carries the per-worker health table under
// "cluster".
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "draining",
			"reasons":   []string{"shutdown: draining in-flight jobs, admission closed"},
			"uptime_ms": time.Since(s.started).Milliseconds(),
		})
		return
	}
	if s.recovering.Load() {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "recovering",
			"reasons":   []string{"catalog: boot recovery reloading pinned matrices"},
			"uptime_ms": time.Since(s.started).Milliseconds(),
		})
		return
	}
	var reasons []string
	if s.brk.open(time.Now()) {
		reasons = append(reasons, "brownout: admission queue saturated, shedding low-priority multiplies")
	}
	if ds := sched.RuntimeFor(s.topo).DegradedSockets(); len(ds) > 0 {
		reasons = append(reasons, fmt.Sprintf("scheduler: %d worker team(s) degraded (sockets %v)", len(ds), ds))
	}
	if q := s.mgr.Quarantined(); len(q) > 0 {
		reasons = append(reasons, fmt.Sprintf("catalog: %d quarantine entry(ies) in force", len(q)))
	}
	var workers []cluster.WorkerStatus
	if s.coord != nil {
		workers = s.coord.Workers()
		healthy := 0
		for _, ws := range workers {
			if ws.State == cluster.Healthy.String() {
				healthy++
				continue
			}
			reasons = append(reasons, fmt.Sprintf("cluster: worker %s %s (%d missed probe(s))", ws.Addr, ws.State, ws.Misses))
		}
		if len(workers) > 0 && healthy == 0 {
			reasons = append(reasons, "cluster: no healthy workers; multiplies execute locally")
		}
		if st := s.coord.Stats(); st.UnderReplicatedShards > 0 {
			reasons = append(reasons, fmt.Sprintf("cluster: %d of %d catalog shard(s) under-replicated; anti-entropy re-replication pending",
				st.UnderReplicatedShards, st.ShardsTotal))
		}
	}
	status := "ok"
	if len(reasons) > 0 {
		status = "degraded"
	}
	body := map[string]any{
		"status":    status,
		"reasons":   reasons,
		"uptime_ms": time.Since(s.started).Milliseconds(),
	}
	if workers != nil {
		body["cluster"] = map[string]any{"workers": workers}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is the READINESS probe load balancers route on: 503 while
// the process cannot usefully take traffic — draining toward shutdown, or
// still replaying the catalog manifest at boot — and 200 otherwise.
// Degraded-but-serving states stay ready; only the two windows where
// admission is closed or the catalog is incomplete flip it.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "status": "draining"})
	case s.recovering.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "status": "recovering"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "status": "ok"})
	}
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (stdlib only — no client library dependency).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.mgr.Metrics()
	cs := s.cat.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(name string, v any) {
		fmt.Fprintf(w, "%s %v\n", name, v)
	}
	secs := func(d time.Duration) string {
		return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
	}
	p("atserve_jobs_accepted_total", m.Accepted)
	p("atserve_jobs_rejected_total", m.Rejected)
	p("atserve_jobs_completed_total", m.Completed)
	p("atserve_jobs_failed_total", m.Failed)
	p("atserve_jobs_canceled_total", m.Canceled)
	p("atserve_jobs_inflight", m.InFlight)
	p("atserve_queue_depth", m.Queued)
	p("atserve_queue_capacity", m.QueueCap)
	p("atserve_retries_total", m.Retries)
	p("atserve_verify_failed_total", m.VerifyFailed)
	p("atserve_eval_jobs_total", m.EvalJobs)
	p("atserve_eval_fused_stages_total", m.FusedStages)
	p("atserve_eval_plan_seconds_total", secs(m.PlanTime))
	p("atserve_task_panics_total", m.TaskPanics)
	p("atserve_watchdog_timeouts_total", m.WatchdogTimeouts)
	p("atserve_quarantined_matrices", m.Quarantined)
	p("atserve_brownout_trips_total", s.brk.trips.Load())
	p("atserve_brownout_shed_total", s.brk.shed.Load())
	p("atserve_degraded_sockets", len(sched.RuntimeFor(s.topo).DegradedSockets()))
	p(`atserve_job_latency_seconds{quantile="0.5"}`, secs(m.LatencyP50))
	p(`atserve_job_latency_seconds{quantile="0.99"}`, secs(m.LatencyP99))
	p("atserve_catalog_matrices", cs.Matrices)
	p("atserve_catalog_resident_bytes", cs.ResidentBytes)
	p("atserve_catalog_budget_bytes", cs.BudgetBytes)
	p("atserve_catalog_evictions_total", cs.Evictions)
	p("atserve_catalog_hits_total", cs.Hits)
	p("atserve_catalog_misses_total", cs.Misses)
	p("atserve_catalog_spilled_matrices", cs.Spilled)
	p("atserve_catalog_spills_total", cs.Spills)
	p("atserve_catalog_reloads_total", cs.Reloads)
	p("atserve_catalog_recovered_total", cs.Recovered)
	p("atserve_scrub_passes_total", cs.ScrubPasses)
	p("atserve_scrub_scanned_total", cs.ScrubScanned)
	p("atserve_scrub_errors_total", cs.ScrubErrors)
	p("atserve_scrub_repairs_total", cs.ScrubRepairs)
	p("atserve_scrub_unrepaired_total", cs.ScrubUnrepaired)
	p("atserve_mult_estimate_seconds_total", secs(m.Mult.EstimateTime))
	p("atserve_mult_optimize_seconds_total", secs(m.Mult.OptimizeTime))
	p("atserve_mult_convert_seconds_total", secs(m.Mult.ConvertTime))
	p("atserve_mult_multiply_seconds_total", secs(m.Mult.MultiplyTime))
	p("atserve_mult_finalize_seconds_total", secs(m.Mult.FinalizeTime))
	p("atserve_mult_verify_seconds_total", secs(m.Mult.VerifyTime))
	p("atserve_mult_wall_seconds_total", secs(m.Mult.WallTime))
	p("atserve_mult_conversions_total", m.Mult.Conversions)
	p("atserve_mult_contributions_total", m.Mult.Contributions)
	p("atserve_mult_target_tiles_total", m.Mult.TargetTiles)
	p("atserve_mult_tasks_stolen_total", m.Mult.TasksStolen)
	if s.coord != nil {
		st := s.coord.Stats()
		p("atserve_cluster_workers_healthy", st.WorkersHealthy)
		p("atserve_cluster_workers_suspect", st.WorkersSuspect)
		p("atserve_cluster_workers_dead", st.WorkersDead)
		p("atserve_cluster_remote_multiplies_total", st.RemoteMultiplies)
		p("atserve_cluster_local_fallbacks_total", st.LocalFallbacks)
		p("atserve_cluster_local_tasks_total", st.LocalTasks)
		p("atserve_cluster_rpc_retries_total", st.RPCRetries)
		p("atserve_cluster_tiles_rerouted_total", st.TilesRerouted)
		p("atserve_cluster_hedges_sent_total", st.HedgesSent)
		p("atserve_cluster_hedged_wins_total", st.HedgedWins)
		p("atserve_cluster_sharded_matrices", st.ShardedMatrices)
		p("atserve_cluster_shards_total", st.ShardsTotal)
		p("atserve_cluster_under_replicated_shards", st.UnderReplicatedShards)
		p("atserve_cluster_shard_ships_total", st.ShardShips)
		p("atserve_cluster_shard_ship_bytes_total", st.ShardShipBytes)
		p("atserve_cluster_re_replications_total", st.ReReplications)
		p("atserve_cluster_shard_crc_failures_total", st.ShardCRCFailures)
		p("atserve_cluster_shard_ref_hits_total", st.ShardRefHits)
		p("atserve_cluster_shard_ref_bytes_total", st.ShardRefBytes)
		p("atserve_cluster_repair_passes_total", st.RepairPasses)
		p("atserve_cluster_merge_frames_total", st.MergeFrames)
		p("atserve_cluster_merge_peak_bytes", st.MergePeakBytes)
	}
}
