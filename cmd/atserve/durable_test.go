package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"atmatrix/internal/faultinject"
	"atmatrix/internal/service"
)

// durableServer stands up the production handler stack over a durable
// catalog in a fresh temp directory.
func durableServer(t *testing.T, dataDir string, sc serverConfig) (*server, *httptest.Server) {
	t.Helper()
	sc.cfg = testConfig()
	sc.dataDir = dataDir
	s, err := newServer(sc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.shutdown(30 * time.Second)
	})
	return s, ts
}

func healthStatus(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	status, _ := out["status"].(string)
	return status
}

// TestServerRecoverAfterRestart is the in-process crash-recovery drill: a
// server admits matrices (one pinned) and serves a multiply; the process
// "dies" (the server object is abandoned without any shutdown flush); a
// second server over the same data directory recovers, the pinned matrix
// is resident, the unpinned one lazily reloads, and the product it serves
// is byte-identical to the pre-crash one.
func TestServerRecoverAfterRestart(t *testing.T) {
	dataDir := t.TempDir()
	outDir := t.TempDir()
	s1, ts1 := durableServer(t, dataDir, serverConfig{allowPath: true})

	pinResp, err := http.Post(ts1.URL+"/v1/matrices?name=A&format=coo&pin=true",
		"application/octet-stream", rmatStream(t, 64, 640, 401))
	if err != nil {
		t.Fatal(err)
	}
	pinResp.Body.Close()
	if pinResp.StatusCode != http.StatusCreated {
		t.Fatalf("pinned upload: status %d", pinResp.StatusCode)
	}
	if resp := upload(t, ts1.URL, "B", rmatStream(t, 64, 640, 402)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload B: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, out := multiply(t, ts1.URL, map[string]any{"a": "A", "b": "B", "store": "P1"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-crash multiply: status %d (%v)", resp.StatusCode, out)
	}
	f1 := filepath.Join(outDir, "pre.atm")
	saveBody, _ := json.Marshal(map[string]string{"path": f1})
	if resp, err := http.Post(ts1.URL+"/v1/matrices/P1/save", "application/json", bytes.NewReader(saveBody)); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("save P1: %v status %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// Crash: no shutdown, no flush — the durable write-through is all the
	// second server gets. (The httptest server is closed so the port is
	// free, but s1's catalog and manager are simply abandoned.)
	ts1.Close()
	_ = s1

	s2, ts2 := durableServer(t, dataDir, serverConfig{allowPath: true})
	rs, err := s2.recoverCatalog()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.Registered != 3 || rs.Loaded != 1 || len(rs.Failed) != 0 {
		t.Fatalf("recover stats = %+v, want 3 registered (A, B, P1), 1 pinned loaded", rs)
	}
	if got := healthStatus(t, ts2.URL); got != "ok" {
		t.Fatalf("healthz after recovery = %q, want ok", got)
	}
	if got := s2.cat.Stats().Recovered; got != 3 {
		t.Fatalf("recovered counter = %d, want 3", got)
	}
	// Pinned A is resident; B and P1 wait spilled until first use.
	for _, info := range s2.cat.List() {
		switch info.Name {
		case "A":
			if info.Spilled || !info.Pinned {
				t.Fatalf("A after recovery: %+v, want resident and pinned", info)
			}
		case "B", "P1":
			if info.Spilled != true {
				t.Fatalf("%s after recovery: %+v, want spilled", info.Name, info)
			}
		}
	}
	// The same multiply against the recovered operands yields a
	// byte-identical product.
	if resp, out := multiply(t, ts2.URL, map[string]any{"a": "A", "b": "B", "store": "P2"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery multiply: status %d (%v)", resp.StatusCode, out)
	}
	f2 := filepath.Join(outDir, "post.atm")
	saveBody, _ = json.Marshal(map[string]string{"path": f2})
	if resp, err := http.Post(ts2.URL+"/v1/matrices/P2/save", "application/json", bytes.NewReader(saveBody)); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("save P2: %v status %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	pre, err := os.ReadFile(f1)
	if err != nil {
		t.Fatal(err)
	}
	post, err := os.ReadFile(f2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pre, post) {
		t.Fatal("multiply result differs across crash recovery")
	}
	if rel := metricValue(t, ts2.URL, "atserve_catalog_reloads_total"); rel < 1 {
		t.Fatalf("reloads = %v, want >= 1 (B lazily reloaded)", rel)
	}
}

// TestServerHealthzReportsRecovering: while boot recovery is in flight the
// health endpoint reports "recovering" with 200, so load balancers route
// traffic (lazy reloads work) while dashboards see the state.
func TestServerHealthzReportsRecovering(t *testing.T) {
	s, ts := durableServer(t, t.TempDir(), serverConfig{})
	s.recovering.Store(true)
	if got := healthStatus(t, ts.URL); got != "recovering" {
		t.Fatalf("healthz = %q, want recovering", got)
	}
	s.recovering.Store(false)
	if got := healthStatus(t, ts.URL); got != "ok" {
		t.Fatalf("healthz = %q, want ok", got)
	}
}

// TestServerScrubEndpointRepairsBitflip drives the full integrity loop over
// HTTP: an armed chaos rule corrupts a resident matrix during the admin
// scrub, the pass detects and repairs it from the durable copy, the
// quarantine opens and closes around the repair, and the counters land in
// /metrics.
func TestServerScrubEndpointRepairsBitflip(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := durableServer(t, t.TempDir(), serverConfig{})
	if resp := upload(t, ts.URL, "A", rmatStream(t, 64, 640, 403)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	faultinject.Enable(1, faultinject.Rule{
		Site: "catalog.scrub", Kind: faultinject.KindBitflip, Count: 1,
	})
	resp, err := http.Post(ts.URL+"/v1/admin/scrub", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub: status %d", resp.StatusCode)
	}
	var out struct {
		Pass struct {
			Scanned int64 `json:"scanned"`
			Errors  int64 `json:"errors"`
			Repairs int64 `json:"repairs"`
		} `json:"pass"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Pass.Scanned != 1 || out.Pass.Errors != 1 || out.Pass.Repairs != 1 {
		t.Fatalf("scrub pass = %+v, want 1/1/1", out.Pass)
	}
	// Repair lifted the quarantine: the matrix multiplies again and health
	// is back to ok.
	if resp, mout := multiply(t, ts.URL, map[string]any{"a": "A", "b": "A"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply after repair: status %d (%v)", resp.StatusCode, mout)
	}
	if got := healthStatus(t, ts.URL); got != "ok" {
		t.Fatalf("healthz after repair = %q, want ok", got)
	}
	if v := metricValue(t, ts.URL, "atserve_scrub_errors_total"); v != 1 {
		t.Fatalf("scrub_errors_total = %v, want 1", v)
	}
	if v := metricValue(t, ts.URL, "atserve_scrub_repairs_total"); v != 1 {
		t.Fatalf("scrub_repairs_total = %v, want 1", v)
	}
}

// TestServerVerifyRejectsCorruptProduct wires -verify end to end: with the
// result bitflip armed persistently, a verifying server fails the multiply
// with 500 after one retry instead of serving the wrong product, and the
// failure is visible in /metrics.
func TestServerVerifyRejectsCorruptProduct(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := durableServer(t, t.TempDir(), serverConfig{
		opts: service.Options{Verify: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond},
	})
	if resp := upload(t, ts.URL, "A", rmatStream(t, 64, 640, 404)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	faultinject.Enable(1, faultinject.Rule{
		Site: "core.mult.result", Kind: faultinject.KindBitflip, Count: 8,
	})
	resp, out := multiply(t, ts.URL, map[string]any{"a": "A", "b": "A"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("verified multiply of corrupted result: status %d (%v), want 500", resp.StatusCode, out)
	}
	if v := metricValue(t, ts.URL, "atserve_verify_failed_total"); v != 2 {
		t.Fatalf("verify_failed_total = %v, want 2 (attempt + one retry)", v)
	}
	if v := metricValue(t, ts.URL, "atserve_retries_total"); v != 1 {
		t.Fatalf("retries_total = %v, want exactly 1", v)
	}
}

// TestRecoverSmoke is the kill -9 drill against the real binary: load a
// pinned and an unpinned matrix, record a product, SIGKILL the process,
// restart it over the same data directory, and require the recovered
// server to serve the identical product. Gated behind ATSERVE_SMOKE=1
// (run via `make serve-smoke`).
func TestRecoverSmoke(t *testing.T) {
	if os.Getenv("ATSERVE_SMOKE") != "1" {
		t.Skip("set ATSERVE_SMOKE=1 to run the binary smoke test")
	}
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	bin := filepath.Join(dir, "atserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	start := func() (*exec.Cmd, string, *bytes.Buffer) {
		addrFile := filepath.Join(dir, "addr")
		os.Remove(addrFile)
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-b-atomic", "8", "-sockets", "2", "-cores", "2",
			"-data-dir", dataDir, "-verify", "2", "-drain", "10s",
			"-allow-path-loads")
		var logs bytes.Buffer
		cmd.Stdout, cmd.Stderr = &logs, &logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		var base string
		for deadline := time.Now().Add(15 * time.Second); ; {
			if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
				base = "http://" + strings.TrimSpace(string(data))
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("server never wrote addr file; logs:\n%s", logs.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
		return cmd, base, &logs
	}
	save := func(base, name, path string) {
		body, _ := json.Marshal(map[string]string{"path": path})
		resp, err := http.Post(base+"/v1/matrices/"+name+"/save", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("save %s: %v status %v", name, err, resp.StatusCode)
		}
		resp.Body.Close()
	}

	cmd1, base1, logs1 := start()
	defer cmd1.Process.Kill()
	presp, err := http.Post(base1+"/v1/matrices?name=A&format=coo&pin=true",
		"application/octet-stream", rmatStream(t, 64, 640, 501))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusCreated {
		t.Fatalf("pinned upload: status %d; logs:\n%s", presp.StatusCode, logs1.String())
	}
	if resp := upload(t, base1, "B", rmatStream(t, 64, 640, 502)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload B: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, out := multiply(t, base1, map[string]any{"a": "A", "b": "B", "store": "P"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: status %d (%v)", resp.StatusCode, out)
	}
	pre := filepath.Join(dir, "pre.atm")
	save(base1, "P", pre)

	// kill -9: no drain, no flush, no goodbye.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	cmd2, base2, logs2 := start()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd2.Wait() }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			cmd2.Process.Kill()
		}
	}()
	// Wait out boot recovery.
	for deadline := time.Now().Add(15 * time.Second); ; {
		if s := healthStatus(t, base2); s == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server stuck recovering; logs:\n%s", logs2.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	// All three matrices survived the SIGKILL; the product of the
	// recovered operands is byte-identical.
	if resp, out := multiply(t, base2, map[string]any{"a": "A", "b": "B", "store": "P2"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill multiply: status %d (%v); logs:\n%s", resp.StatusCode, out, logs2.String())
	}
	post := filepath.Join(dir, "post.atm")
	save(base2, "P2", post)
	preBytes, err := os.ReadFile(pre)
	if err != nil {
		t.Fatal(err)
	}
	postBytes, err := os.ReadFile(post)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preBytes, postBytes) {
		t.Fatal("product differs across kill -9 recovery")
	}
}
