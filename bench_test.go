package atmatrix

// One benchmark per table/figure of the paper's evaluation (§IV), plus
// kernel microbenchmarks and the ablation benches called out in DESIGN.md.
// The figure benches run the exp harness at a reduced scale so that
// `go test -bench=.` completes in minutes; the atbench CLI runs the same
// code at the recorded scale of EXPERIMENTS.md.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"atmatrix/internal/core"
	"atmatrix/internal/density"
	"atmatrix/internal/exp"
	"atmatrix/internal/gen"
	"atmatrix/internal/kernels"
	"atmatrix/internal/mat"
	"atmatrix/internal/numa"
	"atmatrix/internal/rmat"
)

// benchScale keeps the per-iteration work of the figure benches small.
const benchScale = 1.0 / 64

func benchOptions() exp.Options {
	o := exp.DefaultOptions()
	o.Scale = benchScale
	o.FlopCap = 2e9
	o.Topology = numa.Detect()
	return o
}

// --- Table I -----------------------------------------------------------

func BenchmarkTabI_Generate(b *testing.B) {
	for _, id := range []string{"R1", "R3", "R7", "G1", "G9"} {
		id := id
		b.Run(id, func(b *testing.B) {
			spec, err := gen.Lookup(id)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := spec.Generate(benchScale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Shared fixtures ----------------------------------------------------

type fixture struct {
	coo *mat.COO
	csr *mat.CSR
	am  *core.ATMatrix
	cfg core.Config
}

var (
	fixtures   = map[string]*fixture{}
	fixtureMu  sync.Mutex
	fixtureCfg = benchOptions().Config()
)

func getFixture(b *testing.B, id string) *fixture {
	b.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtures[id]; ok {
		return f
	}
	spec, err := gen.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	coo, err := spec.Generate(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	am, _, err := core.Partition(coo, fixtureCfg)
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{coo: coo, csr: coo.ToCSR(), am: am, cfg: fixtureCfg}
	fixtures[id] = f
	return f
}

// --- Fig. 2 / Fig. 7: partitioning --------------------------------------

func BenchmarkFig2_Partition(b *testing.B) {
	for _, id := range []string{"R3", "R7", "G5"} {
		f := getFixture(b, id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Partition(f.coo, f.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig7_Partitioning(b *testing.B) {
	// The full Fig. 7 pipeline: partition + one spspsp multiplication per
	// iteration, per matrix.
	for _, id := range []string{"R1", "R3", "R8"} {
		f := getFixture(b, id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Partition(f.coo, f.cfg); err != nil {
					b.Fatal(err)
				}
				if _, err := core.MulSpSpSp(f.csr, f.csr, f.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 5: water level -------------------------------------------------

func BenchmarkFig5_WaterLevel(b *testing.B) {
	f := getFixture(b, "R3")
	dm := f.am.DensityMap()
	est := density.EstimateProduct(dm, dm)
	limit := core.EstimatedBytesAt(est, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.WaterLevel(est, limit)
	}
}

// --- Fig. 8: C = A·A approaches ------------------------------------------

func BenchmarkFig8_SquareMult(b *testing.B) {
	for _, id := range []string{"R1", "R3", "G1", "G9"} {
		f := getFixture(b, id)
		b.Run(id+"/spspsp", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MulSpSpSp(f.csr, f.csr, f.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(id+"/spspd", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MulSpSpD(f.csr, f.csr, f.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(id+"/atmult", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Multiply(f.am, f.am, f.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRepeatedMultiply runs ATMULT many times over the same operands —
// the serving-loop pattern (iterative algorithms, repeated queries) where
// per-call allocation churn dominates. Steady-state allocs/op is the number
// the persistent worker runtime and per-worker scratch arenas drive toward
// zero; wall time must not regress versus BenchmarkFig8_SquareMult.
func BenchmarkRepeatedMultiply(b *testing.B) {
	for _, id := range []string{"R3", "G1"} {
		f := getFixture(b, id)
		b.Run(id, func(b *testing.B) {
			// Warm up once so lazily-grown buffers don't count.
			if _, _, err := core.Multiply(f.am, f.am, f.cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Multiply(f.am, f.am, f.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 9: mixed sparse-dense -------------------------------------------

func BenchmarkFig9_MixedMult(b *testing.B) {
	f := getFixture(b, "R1")
	k := f.coo.Rows
	n := 3 * int(f.csr.NNZ()) / k
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(1))
	full := mat.RandomDense(rng, k, n)
	fullAT := core.FromDense(full, f.cfg.BAtomic)
	b.Run("spdd", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.MulSpDD(f.csr, full, f.cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("atmult", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Multiply(f.am, fullAT, f.cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	fullT := mat.RandomDense(rng, n, k)
	fullTAT := core.FromDense(fullT, f.cfg.BAtomic)
	b.Run("dspd", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.MulDSpD(fullT, f.csr, f.cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("atmult-denseleft", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Multiply(fullTAT, f.am, f.cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Fig. 10: ablation steps ----------------------------------------------

func BenchmarkFig10_Ablation(b *testing.B) {
	f := getFixture(b, "R3")
	for _, step := range core.AllSteps() {
		step := step
		b.Run(step.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RunStep(f.coo, f.cfg, step); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Kernel microbenchmarks: see bench_kernels_test.go ------------------------

// kernelOperands builds the mid-sparse operand pair the ablation benches
// below share with the (now separate) kernel microbenchmark suite.
func kernelOperands(rho float64) (*mat.Dense, *mat.Dense, *mat.CSR, *mat.CSR) {
	rng := rand.New(rand.NewSource(9))
	const n = 256
	ac := mat.RandomCOO(rng, n, n, int(rho*n*n))
	bc := mat.RandomCOO(rng, n, n, int(rho*n*n))
	return ac.ToDense(), bc.ToDense(), ac.ToCSR(), bc.ToCSR()
}

// --- DESIGN.md ablations ------------------------------------------------------

// BenchmarkAblation_Accumulator compares the SPA-based sparse accumulation
// against a naive map-based accumulator, justifying the SPA design choice.
func BenchmarkAblation_Accumulator(b *testing.B) {
	_, _, as, bs := kernelOperands(0.05)
	b.Run("spa", func(b *testing.B) {
		spa := kernels.NewSPA(bs.Cols)
		for i := 0; i < b.N; i++ {
			acc := kernels.NewSpAcc(as.Rows, bs.Cols)
			kernels.SpSpSp(acc, 0, 0, kernels.FullCSR(as), kernels.FullCSR(bs), spa)
			acc.ToCSR()
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mapGustavson(as, bs)
		}
	})
}

// mapGustavson is the strawman: Gustavson's algorithm with a Go map as the
// row accumulator.
func mapGustavson(a, bm *mat.CSR) *mat.CSR {
	out := mat.NewCSR(a.Rows, bm.Cols)
	var cols []int32
	var vals []float64
	for i := 0; i < a.Rows; i++ {
		row := map[int32]float64{}
		ac, av := a.Row(i)
		for p, k := range ac {
			bc, bv := bm.Row(int(k))
			for q, j := range bc {
				row[j] += av[p] * bv[q]
			}
		}
		keys := make([]int32, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(x, y int) bool { return keys[x] < keys[y] })
		for _, k := range keys {
			cols = append(cols, k)
			vals = append(vals, row[k])
		}
		out.RowPtr[i+1] = int64(len(cols))
	}
	out.ColIdx = cols
	out.Val = vals
	return out
}

// BenchmarkAblation_ColSearch compares the binary column-id search used
// for referenced windows against a linear scan.
func BenchmarkAblation_ColSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := mat.RandomCOO(rng, 512, 4096, 200_000).ToCSR()
	b.Run("binary", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			for r := 0; r < a.Rows; r++ {
				lo, hi := a.ColSpan(r, 1024, 1536)
				sink += hi - lo
			}
		}
		_ = sink
	})
	b.Run("linear", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			for r := 0; r < a.Rows; r++ {
				lo, hi := a.RowRange(r)
				for p := lo; p < hi; p++ {
					if c := a.ColIdx[p]; c >= 1024 && c < 1536 {
						sink++
					}
				}
			}
		}
		_ = sink
	})
}

// BenchmarkAblation_Stealing measures cross-team work stealing on a
// skew-loaded multiplication (G9 concentrates work in few tile-rows).
func BenchmarkAblation_Stealing(b *testing.B) {
	f := getFixture(b, "G9")
	for _, stealing := range []bool{false, true} {
		name := "pinned"
		if stealing {
			name = "stealing"
		}
		cfg := f.cfg
		cfg.Stealing = stealing
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Multiply(f.am, f.am, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Runtime compares the persistent worker runtime (the
// default) against the historical spawn-per-call ephemeral workers, on the
// serving-loop workload of BenchmarkRepeatedMultiply. The persistent path
// should win on both allocs/op and wall time.
func BenchmarkAblation_Runtime(b *testing.B) {
	f := getFixture(b, "R3")
	for _, ephemeral := range []bool{false, true} {
		name := "persistent"
		if ephemeral {
			name = "ephemeral"
		}
		cfg := f.cfg
		cfg.EphemeralWorkers = ephemeral
		b.Run(name, func(b *testing.B) {
			if _, _, err := core.Multiply(f.am, f.am, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Multiply(f.am, f.am, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDensityEstimator measures the SpMacho product estimator,
// whose cost the paper reports as negligible (<0.1% of ATMULT).
func BenchmarkDensityEstimator(b *testing.B) {
	f := getFixture(b, "R3")
	dm := f.am.DensityMap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		density.EstimateProduct(dm, dm)
	}
}

// BenchmarkRMATGenerate measures the RMAT workload generator.
func BenchmarkRMATGenerate(b *testing.B) {
	p, _ := rmat.PaperParams(5)
	for i := 0; i < b.N; i++ {
		if _, err := rmat.Generate(4096, 100_000, p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt_Retiling measures the future-work extension of §IV-C: re-
// tiling the left operand to the right operand's row bands before a mixed
// multiplication, avoiding the implicit column slicing of A. B is a
// *partitioned* dense matrix (the paper's Fig. 9 R7 situation), so the
// un-retiled A — a single huge sparse tile — is column-sliced per band.
func BenchmarkExt_Retiling(b *testing.B) {
	f := getFixture(b, "R7") // the paper's slicing-overhead case
	rng := rand.New(rand.NewSource(2))
	k := f.coo.Rows
	n := 256
	fullCOO := mat.RandomDense(rng, k, n).ToCOO()
	fullPart, _, err := core.Partition(fullCOO, f.cfg)
	if err != nil {
		b.Fatal(err)
	}
	fullAT := fullPart
	b.Run("sliced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Multiply(f.am, fullAT, f.cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("retiled", func(b *testing.B) {
		re := core.RetileToMatch(f.am, fullAT)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Multiply(re, fullAT, f.cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCalibrate measures the cost-model calibration hook itself.
func BenchmarkCalibrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.CalibrateCostModel()
	}
}

// BenchmarkAblation_EstimatorVsSymbolic quantifies §III-D's trade-off:
// the probabilistic density-map estimator costs O(grid³) independent of
// nnz, while the exact symbolic SpGEMM phase costs O(flops).
func BenchmarkAblation_EstimatorVsSymbolic(b *testing.B) {
	f := getFixture(b, "R3")
	dm := f.am.DensityMap()
	b.Run("estimator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			density.EstimateProduct(dm, dm)
		}
	})
	b.Run("symbolic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := density.SymbolicMap(f.csr, f.csr, f.cfg.BAtomic); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_RowVsColGustavson compares the row-based Gustavson
// baseline with the column-based MATLAB variant (§V-B).
func BenchmarkAblation_RowVsColGustavson(b *testing.B) {
	f := getFixture(b, "R3")
	csc := mat.CSCFromCSR(f.csr)
	b.Run("row-csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MulSpSpSp(f.csr, f.csr, f.cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("col-csc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mat.MulCSC(csc, csc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpMV compares matrix-vector multiplication over the plain CSR,
// the AT MATRIX, and the dense representation — the workload for which
// Vuduc observed CSR to be hard to beat (§II-A2), motivating CSR as the
// sparse tile payload.
func BenchmarkSpMV(b *testing.B) {
	f := getFixture(b, "R3")
	x := make([]float64, f.csr.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.csr.MatVec(x)
		}
	})
	b.Run("atmatrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.am.MatVec(x, f.cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		d := f.csr.ToDense()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.MatVec(x)
		}
	})
}

// BenchmarkSpMV_BCSR extends the SpMV comparison with the fixed
// micro-blocked BCSR representation of §V-A/§V-C. On matrices without
// small dense blocks the fill-in overhead dominates — the contrast the
// paper draws between microscopic register blocking and its macroscopic
// adaptive tiles.
func BenchmarkSpMV_BCSR(b *testing.B) {
	f := getFixture(b, "R3")
	x := make([]float64, f.csr.Cols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	for _, blk := range [][2]int{{2, 2}, {3, 3}, {4, 4}} {
		bc, err := mat.BCSRFromCSR(f.csr, blk[0], blk[1])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%dx%d(fill %.1fx)", blk[0], blk[1], bc.FillRatio()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bc.MatVec(x)
			}
		})
	}
}
