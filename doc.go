// Package atmatrix is a from-scratch Go reproduction of "Topology-Aware
// Optimization of Big Sparse Matrices and Matrix Multiplications on
// Main-Memory Systems" (Kernert, Lehner, Köhler — ICDE 2016).
//
// The library lives under internal/:
//
//   - internal/core — the AT MATRIX adaptive tile matrix and the ATMULT
//     cost-optimized multiplication operator (the paper's contribution);
//   - internal/mat, internal/morton, internal/kernels, internal/density,
//     internal/costmodel, internal/numa, internal/sched, internal/rmat,
//     internal/gen, internal/mmio — the substrates;
//   - internal/exp — the experiment harness regenerating every table and
//     figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each experiment via `go test -bench`.
package atmatrix
